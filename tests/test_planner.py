"""Tests for the queue planner (§2.3 deployment vision)."""

import pytest

from repro.core.planner import PlanError, TrafficClass, plan_queues


def test_basic_plan():
    plan = plan_queues([
        TrafficClass("bulk", n_virtual_priorities=8, expected_flows=150),
        TrafficClass("rpc", n_virtual_priorities=4, expected_flows=50),
        TrafficClass("control", n_virtual_priorities=1),
    ])
    assert plan.n_physical_queues == 4  # 3 classes + ACK
    assert plan.physical_queue_of["bulk"] == 0
    assert plan.physical_queue_of["control"] == 2
    assert plan.ack_queue == 3
    assert plan.channels_of["control"] is None
    assert plan.channels_of["bulk"].n_priorities == 8
    desc = plan.describe()
    assert "bulk" in desc and "virtual priorities" in desc


def test_channel_width_scales_with_flow_count():
    few = plan_queues([TrafficClass("a", 4, expected_flows=10)])
    many = plan_queues([TrafficClass("a", 4, expected_flows=1000)])
    assert many.channels_of["a"].fluctuation_ns > few.channels_of["a"].fluctuation_ns


def test_physical_budget_enforced():
    classes = [TrafficClass(f"c{i}") for i in range(8)]
    with pytest.raises(PlanError):
        plan_queues(classes)  # 8 classes + ACK = 9 > 8
    plan = plan_queues(classes[:7])
    assert plan.n_physical_queues == 8


def test_slo_violation_detected():
    with pytest.raises(PlanError):
        plan_queues([
            TrafficClass("latency", n_virtual_priorities=12, expected_flows=500,
                         max_added_delay_ns=10_000),
        ])
    # relaxing the SLO makes it plannable
    plan = plan_queues([
        TrafficClass("latency", n_virtual_priorities=12, expected_flows=500,
                     max_added_delay_ns=2_000_000),
    ])
    assert plan.channels_of["latency"] is not None


def test_duplicate_and_empty_rejected():
    with pytest.raises(PlanError):
        plan_queues([])
    with pytest.raises(PlanError):
        plan_queues([TrafficClass("x"), TrafficClass("x")])


def test_class_validation():
    with pytest.raises(ValueError):
        TrafficClass("x", n_virtual_priorities=0)
    with pytest.raises(ValueError):
        TrafficClass("x", expected_flows=0)


def test_planned_channels_are_usable():
    """The planner's output drops straight into PrioPlusCC."""
    from repro.cc import Swift, SwiftParams
    from repro.core import PrioPlusCC, StartTier
    from tests.helpers import FakeSender

    plan = plan_queues([TrafficClass("bulk", n_virtual_priorities=6, expected_flows=100)])
    cfg = plan.channels_of["bulk"]
    cc = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), cfg, vpriority=6,
                    tier=StartTier.MEDIUM)
    cc.attach(FakeSender())
    assert cc.d_limit > cc.d_target
