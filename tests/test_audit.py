"""The invariant auditor (repro.audit): detection power and zero feedback.

Three families of guarantees under test:

* **Detection** — every auditor fires on a deliberately broken invariant:
  corrupted buffer accounting, PFC causality breaks and pause-graph
  deadlocks, sender-window drift, clock regressions, and packet-ledger
  leaks / unclassified releases.
* **Regressions** — the three historical bugs fixed alongside the auditor
  stay fixed, and each one's *legacy* behaviour (reinstated via monkeypatch)
  is caught by the auditor rather than by a crash or silence:

  - ``_disarm_rto_if_idle`` disarming the RTO while retransmits sat queued,
  - drop double-counting when the shared pool and headroom both rejected,
  - ``SharedBuffer`` dereferencing ``self.sim.now`` with an enabled recorder
    but no ``bind_telemetry`` call.

* **Zero feedback** — an audited run is byte-identical to an unaudited one,
  and clean scenarios (including randomized ones) audit clean in strict mode.
"""

from __future__ import annotations

import heapq
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    NULL_AUDITOR,
    AuditError,
    Auditor,
    audit_scope,
    current_auditor,
    default_auditor,
)
from repro.cc.base import CongestionControl
from repro.experiments.common import FunctionExperiment
from repro.runner import RunnerError, run_experiment
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.packet import DATA, PACKET_POOL
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.telemetry import Recorder, set_default_recorder, write_events_jsonl
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

from tests.golden_battery import canonical, pfc_incast


# ----------------------------------------------------------------------
# scenario helpers
# ----------------------------------------------------------------------
def _star_scenario(sim, n=2, flow_bytes=40_000, cwnd=40_000, cfg=None, rto_ns=300_000):
    cfg = cfg or SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n, rate_bps=10e9, link_delay_ns=1_000, switch_cfg=cfg)
    flows = [Flow(i + 1, senders[i], recv, flow_bytes) for i in range(n)]
    fsenders = [
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=cwnd), rto_ns=rto_ns)
        for f in flows
    ]
    return net, flows, fsenders, recv


def _violations(aud, invariant):
    return [v for v in aud.report.violations if v.invariant == invariant]


# ----------------------------------------------------------------------
# plumbing: defaults, scope, modes
# ----------------------------------------------------------------------
def test_audit_is_off_by_default():
    assert default_auditor() is NULL_AUDITOR
    assert current_auditor() is None
    assert not Simulator(1).audit.enabled
    assert not SharedBuffer(1000).audit.enabled


def test_audit_scope_installs_and_restores_default():
    assert default_auditor() is NULL_AUDITOR
    with audit_scope("warn") as aud:
        assert default_auditor() is aud
        assert current_auditor() is aud
        assert PACKET_POOL.audit is aud
        sim = Simulator(1)
        assert sim.audit is aud
        buf = SharedBuffer(1000)
        assert buf.audit is aud
    assert default_auditor() is NULL_AUDITOR
    assert PACKET_POOL.audit is NULL_AUDITOR


def test_audit_scope_restores_default_on_exception():
    with pytest.raises(KeyError):
        with audit_scope("strict"):
            raise KeyError("boom")
    assert default_auditor() is NULL_AUDITOR


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        Auditor(mode="loose")


def test_strict_mode_raises_at_violation_site():
    aud = Auditor(mode="strict")
    with pytest.raises(AuditError, match=r"\[audit:demo\] t=7: boom"):
        aud.violation(7, "demo", "boom")
    assert aud.report.violation_count == 1


def test_warn_mode_records_and_continues():
    aud = Auditor(mode="warn")
    aud.violation(1, "demo", "first")
    aud.violation(2, "demo", "second")
    assert not aud.report.ok
    assert [v.message for v in aud.report.violations] == ["first", "second"]


def test_report_caps_recorded_violations():
    aud = Auditor(mode="warn")
    for i in range(150):
        aud.violation(i, "demo", f"v{i}")
    assert aud.report.violation_count == 150
    assert len(aud.report.violations) == aud.report.MAX_RECORDED
    d = aud.report.to_dict()
    assert d["violation_count"] == 150 and not d["ok"]


def test_warn_violations_mirror_to_recorder_and_jsonl(tmp_path):
    rec = Recorder(events=True)
    aud = Auditor(mode="warn", recorder=rec)
    aud.violation(7, "demo", "boom")
    assert rec.events["audit"] == [(7, "demo", "boom")]
    assert rec.metrics.counter("audit.demo").value == 1
    path = tmp_path / "events.jsonl"
    n = write_events_jsonl(rec, str(path))
    assert n == 1
    row = json.loads(path.read_text().splitlines()[0])
    assert row == {"ch": "audit", "t": 7, "invariant": "demo", "message": "boom"}


# ----------------------------------------------------------------------
# (2) buffer byte reconciliation
# ----------------------------------------------------------------------
def test_buffer_auditor_detects_accounting_drift():
    aud = Auditor(mode="warn")
    buf = SharedBuffer(16_000, headroom_bytes=4_000)
    buf.audit = aud
    assert buf.try_admit_shared(0, 1_000)
    assert aud.report.ok  # clean so far
    buf.shared_used += 7  # corrupt the books behind the auditor's back
    assert buf.try_admit_shared(0, 1_000)
    drift = _violations(aud, "buffer_bytes")
    assert drift and "drifted from shadow ledger" in drift[0].message


def test_buffer_auditor_detects_over_capacity():
    aud = Auditor(mode="warn")
    buf = SharedBuffer(16_000, headroom_bytes=4_000)
    buf.audit = aud
    assert buf.try_admit_shared(0, 10_000)
    buf.shared_capacity = 5_000  # capacity shrank under live traffic
    buf.release(1_000, from_headroom=False)
    over = [v for v in _violations(aud, "buffer_bytes") if "over capacity" in v.message]
    assert over


def test_buffer_auditor_strict_raises_in_place():
    aud = Auditor(mode="strict")
    buf = SharedBuffer(16_000)
    buf.audit = aud
    assert buf.try_admit_shared(0, 1_000)
    buf.shared_used = 999
    with pytest.raises(AuditError, match="buffer_bytes"):
        buf.try_admit_shared(0, 1_000)


# ----------------------------------------------------------------------
# (3) PFC causality + deadlock watchdog
# ----------------------------------------------------------------------
def test_pfc_pause_resume_pair_is_clean():
    aud = Auditor(mode="warn")
    aud.pfc_signal(10, "sw", "host0.nic", 0, 1, True)
    aud.pfc_signal(20, "sw", "host0.nic", 0, 1, False)
    assert aud.report.ok


def test_pfc_resume_without_pause_detected():
    aud = Auditor(mode="warn")
    aud.pfc_signal(10, "sw", "host0.nic", 0, 1, False)
    bad = _violations(aud, "pfc_causality")
    assert bad and "RESUME without a" in bad[0].message


def test_pfc_double_pause_detected():
    aud = Auditor(mode="warn")
    aud.pfc_signal(10, "sw", "host0.nic", 0, 1, True)
    aud.pfc_signal(20, "sw", "host0.nic", 0, 1, True)
    bad = _violations(aud, "pfc_causality")
    assert bad and "double pause" in bad[0].message


def test_pfc_negative_backlog_detected():
    aud = Auditor(mode="warn")
    aud.pfc_backlog(10, ("sw", 0, 1), -64)
    bad = _violations(aud, "pfc_causality")
    assert bad and "backlog negative" in bad[0].message


def test_pfc_deadlock_cycle_detected_past_horizon():
    aud = Auditor(mode="warn", deadlock_horizon_ns=1_000)
    # A pauses its ingress from B, B pauses its ingress from A: a cycle —
    # but young edges are not a deadlock yet
    aud.pfc_signal(0, "A", "B.p0", 0, 0, True)
    aud.pfc_signal(0, "B", "A.p1", 1, 0, True)
    assert aud.report.ok
    # any later PFC activity re-runs the watchdog; the cycle is now stale
    aud.pfc_signal(5_000, "C", "D.p0", 0, 0, True)
    dead = _violations(aud, "pfc_deadlock")
    assert len(dead) == 1
    assert "pause cycle" in dead[0].message and "pause graph" in dead[0].message


def test_pfc_no_deadlock_without_cycle():
    aud = Auditor(mode="warn", deadlock_horizon_ns=1_000)
    aud.pfc_signal(0, "A", "B.p0", 0, 0, True)  # one-way wait, no cycle
    aud.pfc_signal(5_000, "C", "D.p0", 0, 0, True)
    assert not _violations(aud, "pfc_deadlock")


# ----------------------------------------------------------------------
# (4) sender window accounting
# ----------------------------------------------------------------------
def test_sender_window_drift_detected():
    with audit_scope("warn") as aud:
        sim = Simulator(3)
        _net, _flows, senders, _recv = _star_scenario(sim, n=1)
        sim.run(until=5_000)  # mid-flight: several packets outstanding
        snd = senders[0]
        assert snd.inflight_bytes > 0
        snd.inflight_bytes += 999  # corrupt the window accounting
        aud.sender_event(sim.now, snd)
        snd.inflight_bytes -= 999  # restore so the rest of the run is clean
        sim.run(until=1_000_000_000)
    bad = _violations(aud, "sender_window")
    assert len(bad) == 1 and "sent-unacked payloads total" in bad[0].message


def test_sender_window_clean_run_has_checks():
    with audit_scope("strict") as aud:
        sim = Simulator(3)
        _net, flows, _senders, _recv = _star_scenario(sim)
        sim.run(until=1_000_000_000)
    assert all(f.done for f in flows)
    assert aud.report.ok
    assert aud.report.checks["sender_window"] > 0


# ----------------------------------------------------------------------
# (5) clock monotonicity
# ----------------------------------------------------------------------
def test_clock_regression_detected_on_fused_path():
    with audit_scope("warn") as aud:
        sim = Simulator(1)
        sim.at(1_000, lambda: None)
        sim.run()
        assert sim.now == 1_000
        # corrupt the heap: a fused (time, seq, fn, args) entry in the past
        sim._seq += 1
        heapq.heappush(sim._heap, (500, sim._seq, lambda: None, ()))
        sim._live += 1
        sim.run()
    bad = _violations(aud, "clock")
    assert bad and "executed after the clock" in bad[0].message


def test_audited_run_loop_matches_plain_run():
    def build():
        order = []
        sim = Simulator(2)
        for i in range(50):
            sim.call_after(i * 10, order.append, i)
        doomed = sim.at(123, order.append, "cancelled")
        sim.at(125, order.append, "kept")
        doomed.cancel()
        return sim, order

    sim_a, order_a = build()
    n_a = sim_a.run(until=400)
    with audit_scope("strict") as aud:
        sim_b, order_b = build()
        n_b = sim_b.run(until=400)
    assert (n_b, sim_b.now, order_b) == (n_a, sim_a.now, order_a)
    assert aud.report.ok
    assert aud.report.checks["clock"] >= n_b


# ----------------------------------------------------------------------
# (1) packet conservation ledger
# ----------------------------------------------------------------------
def test_ledger_flags_unclassified_release():
    with audit_scope("warn") as aud:
        pkt = PACKET_POOL.acquire(DATA, 1040, src=0, dst=1, flow_id=1)
        PACKET_POOL.release(pkt)  # no delivery/drop classification
    bad = _violations(aud, "packet_ledger")
    assert bad and "missing its" in bad[0].message
    assert aud.report.ledger["released"] == 1
    assert aud.report.ledger["delivered"] == 0


def test_ledger_flags_leaked_packet():
    with audit_scope("warn") as aud:
        pkt = PACKET_POOL.acquire(DATA, 1040, src=0, dst=1, flow_id=1)
    bad = _violations(aud, "packet_ledger")
    assert bad and "leaked" in bad[0].message
    PACKET_POOL.release(pkt)  # clean up outside the scope


def test_strict_finalize_raises_on_leak():
    pkt = None
    with pytest.raises(AuditError, match="packet_ledger"):
        with audit_scope("strict"):
            pkt = PACKET_POOL.acquire(DATA, 1040, src=0, dst=1, flow_id=1)
    assert default_auditor() is NULL_AUDITOR  # scope restored before the raise
    PACKET_POOL.release(pkt)


def test_ledger_reconciles_clean_scenario_with_drops():
    cfg = SwitchConfig(n_queues=2, buffer_bytes=20_000, pfc=PfcConfig(enabled=False))
    with audit_scope("strict") as aud:
        sim = Simulator(7)
        net, flows, _s, _r = _star_scenario(
            sim, n=4, flow_bytes=60_000, cwnd=60_000, cfg=cfg, rto_ns=400_000
        )
        sim.run(until=1_000_000_000)
    assert all(f.done for f in flows)
    led = aud.report.ledger
    assert led["residual"] == 0
    assert led["delivered"] > 0
    assert led["dropped"].get("buffer_shared", 0) > 0  # overload really dropped
    assert net.total_drops() == led["dropped_total"]


# ----------------------------------------------------------------------
# satellite 1: SharedBuffer telemetry binding
# ----------------------------------------------------------------------
def test_bind_telemetry_rejects_clockless_sim():
    buf = SharedBuffer(16_000)
    with pytest.raises(ValueError, match="must provide a .now clock"):
        buf.bind_telemetry(None, "sw0")
    with pytest.raises(ValueError, match="must provide a .now clock"):
        buf.bind_telemetry(object(), "sw0")


def test_unbound_buffer_with_enabled_recorder_fails_fast():
    # the historical bug: recorder enabled without bind_telemetry crashed
    # with AttributeError on self.sim.now at the first admitted packet;
    # every emission site now raises a diagnostic RuntimeError instead
    buf = SharedBuffer(16_000, headroom_bytes=4_000)
    buf.telemetry = Recorder(events=True)
    with pytest.raises(RuntimeError, match="bind_telemetry"):
        buf.try_admit_shared(0, 1_000)
    with pytest.raises(RuntimeError, match="bind_telemetry"):
        buf.try_admit_headroom(1_000)
    buf.telemetry.enabled = False
    assert buf.try_admit_shared(0, 1_000)  # admitted silently while disabled
    buf.telemetry.enabled = True
    with pytest.raises(RuntimeError, match="bind_telemetry"):
        buf.release(1_000, from_headroom=False)
    with pytest.raises(RuntimeError, match="bind_telemetry"):
        buf.record_drop(1_000, 0, "buffer_shared")


def test_bound_buffer_emits_with_clock():
    rec = Recorder(events=True)
    set_default_recorder(rec)
    try:
        sim = Simulator(1)
        buf = SharedBuffer(16_000)
        buf.bind_telemetry(sim, "sw0")
        assert buf.try_admit_shared(0, 1_000)
    finally:
        set_default_recorder(None)
    assert rec.events["buffer"] == [(0, "sw0", 1_000, 0)]


def test_release_negative_raises_on_both_pools():
    buf = SharedBuffer(16_000, headroom_bytes=4_000)
    with pytest.raises(AssertionError, match="shared-pool accounting"):
        buf.release(1, from_headroom=False)
    with pytest.raises(AssertionError, match="headroom accounting"):
        buf.release(1, from_headroom=True)


# ----------------------------------------------------------------------
# satellite 2: RTO disarm with queued retransmits
# ----------------------------------------------------------------------
def _probe_after_blackhole(sender_cls_patch=None):
    """One flow loses everything to a link cut, relinquishes, then probes.

    Returns (auditor, sender).  With the legacy ``_disarm_rto_if_idle`` the
    probe ACK disarms the RTO while go-back-N retransmits sit queued,
    leaving the flow with no wake-up source at all.
    """
    with audit_scope("warn") as aud:
        sim = Simulator(5)
        net, _flows, senders, recv = _star_scenario(
            sim, n=1, flow_bytes=10_000, cwnd=20_000, rto_ns=100_000
        )
        snd = senders[0]
        sim.run(until=2_000)  # packets on the wire, none delivered yet
        sw = net.switches[0]
        net.set_link_state(sw, recv, up=False)
        snd.stop_sending()  # relinquished (as PrioPlus would)
        sim.run(until=500_000)  # RTO fires: go-back-N queues every lost seq
        assert snd._retx_queue and snd.inflight_bytes == 0  # scenario sanity
        assert snd._rto_ev is not None
        net.set_link_state(sw, recv, up=True)
        snd.send_probe_after(0)
        sim.run(until=1_000_000)
    return aud, snd


def test_legacy_rto_disarm_is_flagged_by_auditor(monkeypatch):
    def legacy_disarm(self):  # pre-fix: ignores the retransmit queue
        if self.inflight_bytes == 0 and not self.probe_outstanding and self._rto_ev is not None:
            self._rto_ev.cancel()
            self._rto_ev = None

    monkeypatch.setattr(FlowSender, "_disarm_rto_if_idle", legacy_disarm)
    aud, snd = _probe_after_blackhole()
    assert snd._rto_ev is None  # the flow is stranded: no timer, no probe
    bad = _violations(aud, "sender_window")
    assert bad and "retransmit queue non-empty with no timer" in bad[0].message


def test_fixed_rto_disarm_keeps_timer_with_queued_retx():
    aud, snd = _probe_after_blackhole()
    assert snd._rto_ev is not None  # the RTO stays armed for the queued retx
    assert not _violations(aud, "sender_window")
    assert aud.report.ok


def test_rto_still_disarmed_when_truly_idle():
    with audit_scope("strict") as aud:
        sim = Simulator(3)
        _net, flows, senders, _recv = _star_scenario(sim, n=1, flow_bytes=5_000)
        sim.run(until=1_000_000_000)
        snd = senders[0]
        assert flows[0].done and snd._rto_ev is None
    assert aud.report.ok


# ----------------------------------------------------------------------
# satellite 3: drop accounting (one packet, one drop, one reason)
# ----------------------------------------------------------------------
def _lossy_overload(aud_mode="strict"):
    cfg = SwitchConfig(n_queues=2, buffer_bytes=20_000, pfc=PfcConfig(enabled=False))
    with audit_scope(aud_mode) as aud:
        sim = Simulator(7)
        net, flows, _s, _r = _star_scenario(
            sim, n=4, flow_bytes=60_000, cwnd=60_000, cfg=cfg, rto_ns=400_000
        )
        sim.run(until=1_000_000_000)
    return aud, net, flows


def test_drop_stats_agree_with_ledger_reason_for_reason():
    aud, net, flows = _lossy_overload()
    assert all(f.done for f in flows)
    stats = net.switches[0].buffer.stats
    assert stats.dropped > 0
    assert stats.dropped == sum(stats.dropped_by_reason.values())
    assert stats.dropped_by_reason == aud.dropped  # same reasons, same counts
    assert aud.report.ok
    assert aud.report.checks["drop_accounting"] > 0


def test_legacy_double_drop_count_is_flagged(monkeypatch):
    # pre-fix: the shared-pool rejection *and* the final rejection each
    # counted a drop, double-counting every lost packet
    orig = SharedBuffer.try_admit_shared

    def legacy(self, queue_bytes, size):
        admitted = orig(self, queue_bytes, size)
        if not admitted:
            self.record_drop(size, -1, "buffer_shared")
        return admitted

    monkeypatch.setattr(SharedBuffer, "try_admit_shared", legacy)
    aud, net, _flows = _lossy_overload(aud_mode="warn")
    stats = net.switches[0].buffer.stats
    assert stats.dropped_by_reason["buffer_shared"] == 2 * aud.dropped["buffer_shared"]
    bad = _violations(aud, "drop_accounting")
    assert bad and "double/under-count" in bad[0].message


def test_drop_telemetry_carries_matching_reason():
    rec = Recorder(events=True)
    set_default_recorder(rec)
    try:
        _aud, net, _flows = _lossy_overload()
    finally:
        set_default_recorder(None)
    stats = net.switches[0].buffer.stats
    drops = rec.events["drop"]
    assert len(drops) == stats.dropped
    by_reason = {}
    for _t, _sw, _size, _prio, reason in drops:
        by_reason[reason] = by_reason.get(reason, 0) + 1
    assert by_reason == dict(stats.dropped_by_reason)
    assert rec.metrics.counter("buffer.drops.buffer_shared").value == stats.dropped


# ----------------------------------------------------------------------
# zero feedback: audited == unaudited, byte for byte
# ----------------------------------------------------------------------
def test_audited_scenario_byte_identical_to_plain():
    plain = canonical({"pfc_incast": pfc_incast()})
    with audit_scope("strict") as aud:
        audited = canonical({"pfc_incast": pfc_incast()})
    assert audited == plain
    assert aud.report.ok
    # the run was really audited, not skipped
    assert aud.report.checks["clock"] > 0
    assert aud.report.checks["buffer_bytes"] > 0
    assert aud.report.checks["pfc_causality"] > 0


# ----------------------------------------------------------------------
# runner / CLI integration
# ----------------------------------------------------------------------
def _tiny_point(seed=1, n=2):
    sim = Simulator(seed)
    _net, flows, _s, _r = _star_scenario(sim, n=n, flow_bytes=20_000, cwnd=20_000)
    sim.run(until=1_000_000_000)
    return {"fcts": [f.fct_ns() for f in flows], "now": sim.now}


TINY_EXP = FunctionExperiment(
    "tiny-audit",
    {
        "two": (_tiny_point, {"seed": 1, "n": 2}),
        "three": (_tiny_point, {"seed": 2, "n": 3}),
    },
)


def test_run_experiment_rejects_bad_audit_mode():
    with pytest.raises(RunnerError, match="audit must be"):
        run_experiment(TINY_EXP, audit="pedantic")


def test_run_experiment_aggregates_audit_reports():
    plain = run_experiment(TINY_EXP)
    audited = run_experiment(TINY_EXP, audit="strict")
    summary = audited.pop("audit")
    assert audited == plain  # the simulation results are untouched
    assert summary["mode"] == "strict" and summary["ok"]
    assert summary["violation_count"] == 0
    assert summary["points_audited"] == 2 and summary["points_cached"] == 0
    assert set(summary["points"]) == {"two", "three"}
    per_point = summary["points"]["two"]
    assert per_point["ok"] and per_point["ledger"]["residual"] == 0


def test_run_experiment_audit_skips_cached_points(tmp_path):
    report = {}
    first = run_experiment(TINY_EXP, cache=str(tmp_path), audit="warn", report=report)
    assert first["audit"]["points_audited"] == 2
    assert report["audit_violations"] == 0
    second = run_experiment(TINY_EXP, cache=str(tmp_path), audit="warn")
    assert second["audit"]["points_audited"] == 0
    assert second["audit"]["points_cached"] == 2
    assert second["audit"]["ok"]
    # cache entries themselves never carry audit payloads
    first.pop("audit")
    second.pop("audit")
    assert second == first


# ----------------------------------------------------------------------
# property-based: random operation sequences audit clean
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["shared", "headroom", "release"]), st.integers(1, 5_000)),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_buffer_ops_reconcile(ops):
    aud = Auditor(mode="strict")  # any inconsistency raises right here
    buf = SharedBuffer(16_000, headroom_bytes=4_000, dt_alpha=2.0)
    buf.audit = aud
    admitted = []
    for kind, size in ops:
        if kind == "shared":
            if buf.try_admit_shared(buf.shared_used // 2, size):
                admitted.append((size, False))
        elif kind == "headroom":
            if buf.try_admit_headroom(size):
                admitted.append((size, True))
        elif admitted:
            size, headroom = admitted.pop(0)
            buf.release(size, from_headroom=headroom)
    aud.finalize()
    assert aud.report.ok
    assert buf.shared_used == sum(s for s, h in admitted if not h)
    assert buf.headroom_used == sum(s for s, h in admitted if h)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_property_random_traffic_audits_clean(seed):
    rnd = random.Random(seed)
    pfc_on = rnd.random() < 0.5
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=rnd.choice([20_000, 64_000, 8 * 1024 * 1024]),
        headroom_per_port_per_prio=8_000 if pfc_on else 0,
        pfc=PfcConfig(enabled=pfc_on, xoff_bytes=4_000),
    )
    with audit_scope("strict") as aud:
        sim = Simulator(seed % 1_000)
        n = rnd.randint(1, 3)
        net, senders, recv = star(
            sim, n, rate_bps=10e9, link_delay_ns=rnd.choice([100, 1_000]), switch_cfg=cfg
        )
        flows = [
            Flow(i + 1, senders[i], recv, rnd.randint(5_000, 80_000)) for i in range(n)
        ]
        for f in flows:
            FlowSender(
                sim,
                net,
                f,
                CongestionControl(init_cwnd_bytes=rnd.randint(2_000, 80_000)),
                rto_ns=200_000,
            )
        cut_at = rnd.randint(1_000, 60_000)
        sim.run(until=cut_at)
        sw = net.switches[0]
        net.set_link_state(sw, recv, up=False)
        sim.run(until=cut_at + rnd.randint(10_000, 300_000))
        net.set_link_state(sw, recv, up=True)
        sim.run(until=1_000_000_000)
    rep = aud.report
    assert rep.ok and rep.finalized
    led = rep.ledger
    assert led["residual"] == led["resident_in_queues"] + led["resident_in_events"]
