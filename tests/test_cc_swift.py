"""Unit tests for Swift (and its role as PrioPlus's inner CC)."""


import pytest

from repro.cc.swift import Swift, SwiftParams
from repro.transport.flow import AckInfo

from tests.helpers import FakeSender


def attach(params=None, **kwargs) -> Swift:
    cc = Swift(params or SwiftParams(target_scaling=False), **kwargs)
    cc.attach(FakeSender())
    return cc


def test_target_resolved_from_base_rtt():
    cc = attach(SwiftParams(base_target_ns=20_000, target_scaling=False))
    assert cc.target_delay_ns == cc.base_rtt + 20_000


def test_ai_below_target():
    cc = attach()
    sender = cc.sender
    w0 = cc.cwnd
    cc.on_ack(sender.ack(delay_ns=cc.base_rtt))
    assert cc.cwnd > w0


def test_md_above_target_once_per_rtt():
    cc = attach()
    sender = cc.sender
    w0 = cc.cwnd
    high = cc.target_delay_ns + 10_000
    cc.on_ack(sender.ack(high))
    w1 = cc.cwnd
    assert w1 < w0
    # second decrease within the same RTT must not fire
    info = AckInfo(sender.sim.now, high, False, 1000, sender.next_new_seq)
    cc.on_ack(info)
    assert cc.cwnd == w1


def test_md_proportional_to_overshoot_with_floor():
    p = SwiftParams(base_target_ns=10_000, beta=0.8, max_mdf=0.5, target_scaling=False)
    cc = attach(p)
    sender = cc.sender
    target = cc.target_delay_ns
    w0 = cc.cwnd
    # mild overshoot: decrease by beta*(d-t)/d
    mild = int(target * 1.01)
    cc.on_ack(sender.ack(mild))
    expected = w0 * (1 - 0.8 * (mild - target) / mild)
    assert cc.cwnd == pytest.approx(expected, rel=1e-6)
    # enormous overshoot: floor at 1 - max_mdf
    sender.sim.now += 10 * cc.base_rtt
    w1 = cc.cwnd
    info = AckInfo(sender.sim.now, target * 100, False, 1000, sender.next_new_seq + 5)
    cc.on_ack(info)
    assert cc.cwnd == pytest.approx(w1 * 0.5, rel=1e-6)


def test_cwnd_clamped_to_bounds():
    cc = attach()
    sender = cc.sender
    for _ in range(200):
        sender.sim.now += 10 * cc.base_rtt
        cc.on_ack(AckInfo(sender.sim.now, cc.target_delay_ns * 50, False, 1000, sender.next_new_seq))
        sender.next_new_seq += 1
    assert cc.cwnd == pytest.approx(cc.min_cwnd)
    for _ in range(100000):
        cc.cwnd += 1e9
        cc.clamp()
    assert cc.cwnd == cc.max_cwnd


def test_ai_is_about_ai_bytes_per_rtt():
    cc = attach(SwiftParams(ai_bytes=150.0, target_scaling=False))
    sender = cc.sender
    cc.cwnd = 10_000.0
    w0 = cc.cwnd
    # ack one full window's worth of bytes at low delay
    acked = 0
    while acked < w0:
        cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, False, 1000, sender.next_new_seq))
        acked += 1000
    assert cc.cwnd - w0 == pytest.approx(150.0, rel=0.1)


def test_target_scaling_raises_target_for_small_windows():
    p = SwiftParams(base_target_ns=10_000, target_scaling=True, fs_range_ns=40_000)
    cc = Swift(p)
    cc.attach(FakeSender())
    cc.cwnd = 100_000.0
    t_large = cc.current_target_ns()
    cc.cwnd = 100.0
    t_small = cc.current_target_ns()
    assert t_small > t_large
    assert t_small <= cc.target_delay_ns + 40_000 + 1


def test_set_target_scaling_off():
    cc = Swift(SwiftParams(target_scaling=True))
    cc.attach(FakeSender())
    cc.set_target_scaling(False)
    cc.cwnd = 10.0
    assert cc.current_target_ns() == cc.target_delay_ns


def test_timeout_backoff():
    cc = attach()
    w0 = cc.cwnd
    cc.on_timeout()
    assert cc.cwnd == pytest.approx(w0 * (1 - cc.params.max_mdf))


def test_probe_ack_default_noop():
    cc = attach()
    w0 = cc.cwnd
    cc.on_probe_ack(AckInfo(0, cc.base_rtt, False, 0, 0, is_probe=True))
    assert cc.cwnd == w0


def test_min_cwnd_override():
    cc = Swift(SwiftParams(target_scaling=False), min_cwnd_bytes=150.0)
    cc.attach(FakeSender())
    assert cc.min_cwnd == 150.0


def test_fluctuation_bound_matches_theory_inputs():
    """The Appendix D formula evaluates positively and grows with n."""
    from repro.analysis.theory import swift_fluctuation_ns

    f1 = swift_fluctuation_ns(1, 150.0, 100e9, 20_000)
    f150 = swift_fluctuation_ns(150, 150.0, 100e9, 20_000)
    assert f150 > f1 > 0
    # paper §4.3.2: 150 flows fluctuate within ~3.2 us for Swift defaults
    assert f150 < 25_000
