"""Golden-results gate for the simulation core.

Re-runs the pinned-seed scenario battery and compares its canonical JSON
byte-for-byte against ``tests/golden/core_results.json``.  Any hot-path
change that shifts event ordering, packet fates or flow completion times —
however subtly — fails here.  Regenerate the reference (only for an
*intentional* semantic change) with::

    PYTHONPATH=src python -m tests.golden_battery --write
"""

import json
from pathlib import Path

from tests.golden_battery import canonical, run_battery

GOLDEN_PATH = Path(__file__).parent / "golden" / "core_results.json"


def test_battery_matches_committed_golden_results():
    expected = GOLDEN_PATH.read_text()
    actual = canonical(run_battery()) + "\n"
    if actual != expected:
        # pinpoint the first divergent scenario before failing on bytes
        exp = json.loads(expected)
        act = json.loads(actual)
        for name in exp:
            assert act.get(name) == exp[name], f"scenario {name!r} diverged"
    assert actual == expected
