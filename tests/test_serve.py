"""The serving daemon: protocol schema, dedupe, crash tolerance, reconnect.

Each test boots a real :class:`BackgroundServer` on a unix socket in
``tmp_path`` and talks to it through the public client — no mocked
transport.  Custom experiments are registered into a private registry; their
point functions are module-level so the fleet's forked workers can unpickle
them by reference (same contract as ``tests/test_runner.py``).
"""

import json
import os
import socket
import threading
import time

import pytest

from repro import api
from repro.client import ServeClient, ServeError, connect, parse_address
from repro.experiments.common import ExperimentRegistry, FunctionExperiment
from repro.runner import run_experiment
from repro.serve import BackgroundServer
from repro.serve.inflight import InflightTable
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    ServerStats,
    SubmitRequest,
    check_version,
    point_event,
)


# ----------------------------------------------------------------------
# point functions (module-level: picklable by reference into workers)
# ----------------------------------------------------------------------
def _quick_point(value=1, seed=0):
    return {"value": value, "seed": seed}


def _slow_point(delay_s=0.5, seed=0):
    time.sleep(delay_s)
    return {"ok": True, "seed": seed}


def _crash_once_point(marker="", seed=0):
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("crashed")
        os._exit(42)  # simulate a segfault/OOM-kill mid-request
    return {"recovered": True}


def _make_server(tmp_path, experiments=(), cache=True, **kwargs):
    """A BackgroundServer on a unix socket, serving a private registry."""
    registry = ExperimentRegistry()
    for exp in experiments:
        registry.register(exp)
    return BackgroundServer(
        unix_path=str(tmp_path / "serve.sock"),
        jobs=2,
        cache=str(tmp_path / "cache") if cache else None,
        registry=registry,
        retry_backoff_s=0.05,
        **kwargs,
    )


# ----------------------------------------------------------------------
# protocol schema: round-trip + version rejection
# ----------------------------------------------------------------------
def test_submit_request_round_trip():
    req = SubmitRequest(
        experiment="fig6", quick=True, faults={"seed": 7, "faults": []},
        audit="warn", tag="t1",
    )
    decoded = SubmitRequest.from_dict(json.loads(json.dumps(req.to_dict())))
    assert decoded == req
    assert decoded.version == PROTOCOL_VERSION


def test_status_round_trip():
    status = JobStatus(
        job_id="job-000001", experiment="fig6", state="done",
        points_total=3, points_done=3,
        sources={"cache": 1, "inflight": 0, "run": 2}, tag="x", wall_s=1.5,
    )
    assert JobStatus.from_dict(json.loads(json.dumps(status.to_dict()))) == status

    stats = ServerStats(
        uptime_s=10.0, jobs_total=2, jobs_active=0, points_total=4,
        cache_hits=1, inflight_hits=1, executed=2, worker_crashes=0,
        fleet_jobs=2, workers=[1, 2], inflight_now=0, cache_dir="/tmp/c",
    )
    decoded = ServerStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert decoded == stats
    assert decoded.hit_ratio == 0.5


def test_unknown_extra_keys_are_ignored():
    payload = SubmitRequest(experiment="fig6").to_dict()
    payload["future_field"] = {"anything": 1}
    assert SubmitRequest.from_dict(payload).experiment == "fig6"


def test_wrong_version_rejected_locally():
    payload = SubmitRequest(experiment="fig6").to_dict()
    payload["version"] = 999
    with pytest.raises(ProtocolError, match="version 999"):
        SubmitRequest.from_dict(payload)
    with pytest.raises(ProtocolError, match="version"):
        check_version({"no": "version"})


def test_invalid_submit_fields_rejected():
    base = SubmitRequest(experiment="fig6").to_dict()
    for corrupt in (
        {**base, "experiment": ""},
        {**base, "audit": "loud"},
        {**base, "faults": "not-a-plan"},
    ):
        with pytest.raises(ProtocolError):
            SubmitRequest.from_dict(corrupt)


def test_point_event_rejects_unknown_source():
    with pytest.raises(ProtocolError, match="source"):
        point_event("job-1", "p", "telepathy", 1, 1)


def test_parse_address_forms():
    assert parse_address("/tmp/x.sock") == (socket.AF_UNIX, "/tmp/x.sock")
    assert parse_address("unix:/tmp/x.sock") == (socket.AF_UNIX, "/tmp/x.sock")
    assert parse_address("127.0.0.1:8642") == (socket.AF_INET, ("127.0.0.1", 8642))
    assert parse_address(":8642") == (socket.AF_INET, ("127.0.0.1", 8642))
    with pytest.raises(ValueError):
        parse_address("no-port-no-path")


def test_wrong_version_rejected_by_server(tmp_path):
    exp = FunctionExperiment("tiny", {"p": (_quick_point, {"seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        payload = SubmitRequest(experiment="tiny").to_dict()
        payload["version"] = 999
        with pytest.raises(ServeError, match="version 999") as err:
            client._request_json("POST", "/v1/submit", payload)
        assert err.value.status == 400


# ----------------------------------------------------------------------
# basic serving: health, discovery, run, errors
# ----------------------------------------------------------------------
def test_health_and_connect(tmp_path):
    with _make_server(tmp_path, []) as srv:
        client = connect(srv.address)
        assert client.health()["ok"] is True


def test_run_and_result_and_status(tmp_path):
    exp = FunctionExperiment(
        "tiny", {"a": (_quick_point, {"value": 1, "seed": 0}),
                 "b": (_quick_point, {"value": 2, "seed": 1})},
    )
    with _make_server(tmp_path, [exp]) as srv:
        client = connect(srv.address)
        assert list(client.experiments()) == ["tiny"]

        seen = []
        report = {}
        result = client.run("tiny", on_progress=lambda p, s: seen.append((p, s)), report=report)
        assert result == {"a": {"value": 1, "seed": 0}, "b": {"value": 2, "seed": 1}}
        assert sorted(p for p, _ in seen) == ["a", "b"]
        assert report["executed"] == 2 and report["points"] == 2

        job_id = client.submit("tiny", tag="again")
        status = client.job_status(job_id)
        assert status.experiment == "tiny" and status.tag == "again"
        result2 = client.result(job_id)
        assert result2 == result

        stats = client.server_status()
        assert stats.points_total == 4 and stats.cache_hits >= 2


def test_unknown_experiment_and_job_404(tmp_path):
    with _make_server(tmp_path, []) as srv:
        client = ServeClient(srv.address)
        with pytest.raises(ServeError) as err:
            client.submit("no-such-experiment")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.job_status("job-999999")
        assert err.value.status == 404


def test_served_result_identical_to_local_runner(tmp_path):
    """Acceptance: the daemon's result is byte-identical to run_experiment."""
    with BackgroundServer(
        unix_path=str(tmp_path / "serve.sock"), jobs=2, cache=str(tmp_path / "cache")
    ) as srv:  # the real registry, with every paper experiment
        remote = connect(srv.address).run("fig6", quick=True)
    local = api.run("fig6", quick=True)
    assert json.dumps(remote, sort_keys=True) == json.dumps(local, sort_keys=True)


# ----------------------------------------------------------------------
# dedupe: cache fast path + in-flight sharing
# ----------------------------------------------------------------------
def test_cache_hit_fast_path(tmp_path):
    exp = FunctionExperiment("tiny", {"p": (_quick_point, {"seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        rep1, rep2 = {}, {}
        r1 = client.run("tiny", report=rep1)
        r2 = client.run("tiny", report=rep2)
        assert r1 == r2
        assert rep1["executed"] == 1 and rep1["cache_hits"] == 0
        assert rep2["executed"] == 0 and rep2["cache_hits"] == 1
        info = client.cache_info()
        assert info["entries"] == 1 and "tiny" in info["experiments"]


def test_concurrent_identical_sweeps_share_execution(tmp_path):
    """Two overlapping identical sweeps must run each point exactly once."""
    exp = FunctionExperiment("slow", {"p": (_slow_point, {"delay_s": 0.8, "seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        results, reports = [None, None], [{}, {}]

        def go(i):
            results[i] = client.run("slow", report=reports[i])

        threads = [threading.Thread(target=go, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert results[0] == results[1] == {"ok": True, "seed": 0}
        executed = sum(r["executed"] for r in reports)
        shared = sum(r["cache_hits"] + r["inflight_hits"] for r in reports)
        assert executed == 1, f"point ran {executed} times across two sweeps"
        assert shared == 1
        stats = connect(srv.address).server_status()
        assert stats.executed == 1 and stats.points_total == 2
        assert stats.hit_ratio >= 0.5  # the acceptance threshold


def test_inflight_table_claims_and_hits():
    async def scenario():
        table = InflightTable()
        fut, owner = table.claim("k1")
        assert owner and len(table) == 1
        fut2, owner2 = table.claim("k1")
        assert not owner2 and fut2 is fut
        fut.set_result({"x": 1})
        assert await fut2 == {"x": 1}
        table.release("k1")
        assert len(table) == 0 and table.hits == 1

    import asyncio

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# crash tolerance: a dying worker degrades, never fails the request
# ----------------------------------------------------------------------
def test_worker_crash_during_request_is_retried(tmp_path):
    marker = str(tmp_path / "crashed_once")
    exp = FunctionExperiment("crashy", {"p": (_crash_once_point, {"marker": marker, "seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        result = client.run("crashy")
        assert result == {"recovered": True}
        assert os.path.exists(marker)
        stats = connect(srv.address).server_status()
        assert stats.worker_crashes >= 1
        # the fleet rebuilt: the daemon still serves fresh work afterwards
        assert client.run("crashy") == {"recovered": True}


# ----------------------------------------------------------------------
# streaming: replay, resume, reconnect
# ----------------------------------------------------------------------
def test_stream_replay_and_resume(tmp_path):
    exp = FunctionExperiment(
        "tiny", {"a": (_quick_point, {"value": 1, "seed": 0}),
                 "b": (_quick_point, {"value": 2, "seed": 1})},
    )
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        job_id = client.submit("tiny")
        client.result(job_id)  # wait for completion

        events = list(client.stream(job_id))
        assert events[0]["type"] == "accepted"
        assert [e["type"] for e in events].count("point") == 2
        assert events[-1]["type"] == "done"

        # resume from an offset: exactly the tail, terminal event included
        tail = list(client.stream(job_id, start=len(events) - 2))
        assert tail == events[-2:]


def test_client_reconnect_mid_job(tmp_path):
    """Dropping the streaming connection loses nothing: reattach and replay."""
    exp = FunctionExperiment(
        "slow2", {"a": (_slow_point, {"delay_s": 0.6, "seed": 0}),
                  "b": (_slow_point, {"delay_s": 0.6, "seed": 1})},
    )
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        job_id = client.submit("slow2")

        # first connection: read only the accepted event, then drop the link
        stream = client.stream(job_id)
        first = next(stream)
        assert first["type"] == "accepted"
        stream.close()  # closes the underlying socket mid-job

        # reconnect from the start: full replay, followed live to the end
        events = list(client.stream(job_id, start=0))
        assert events[0] == first
        assert events[-1]["type"] == "done"
        assert [e["type"] for e in events].count("point") == 2
        assert client.result(job_id) == {
            "a": {"ok": True, "seed": 0},
            "b": {"ok": True, "seed": 1},
        }


def test_result_conflict_while_running(tmp_path):
    exp = FunctionExperiment("slow3", {"p": (_slow_point, {"delay_s": 1.0, "seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        job_id = client.submit("slow3")
        with pytest.raises(ServeError) as err:
            client.result(job_id, wait=False)
        assert err.value.status == 409
        assert client.result(job_id, wait=True) == {"ok": True, "seed": 0}


def test_failed_job_is_reported_not_crashing_the_server(tmp_path):
    exp = FunctionExperiment("raiser", {"p": (_raise_point, {"seed": 0})})
    with _make_server(tmp_path, [exp]) as srv:
        client = ServeClient(srv.address)
        with pytest.raises(ServeError, match="ValueError"):
            client.run("raiser")
        # the daemon survives a failed job
        assert connect(srv.address).health()["ok"] is True


def _raise_point(seed=0):
    raise ValueError("deterministic failure")


# ----------------------------------------------------------------------
# the repro.api facade
# ----------------------------------------------------------------------
def test_api_local_and_remote_agree(tmp_path):
    exp = FunctionExperiment("tiny", {"p": (_quick_point, {"seed": 3})})
    with _make_server(tmp_path, [exp]) as srv:
        remote = api.run("tiny", server=srv.address)
        assert remote == {"value": 1, "seed": 3}
        assert api.experiments(server=srv.address) == ["tiny"]
        job_id = api.submit("tiny", server=srv.address)
        assert api.result(job_id, server=srv.address) == remote
        stats = api.status(srv.address)
        assert isinstance(stats, ServerStats)
        info = api.cache_info(server=srv.address)
        assert info["entries"] == 1


def test_api_rejects_local_knobs_on_remote_runs(tmp_path):
    with pytest.raises(ValueError, match="daemon"):
        api.run("fig6", server="/tmp/nowhere.sock", jobs=4)
    with pytest.raises(ValueError, match="registry name"):
        api.run(FunctionExperiment("x", {"p": (_quick_point, {})}), server="/tmp/nowhere.sock")


def test_api_local_run_matches_run_experiment():
    exp = api.get_experiment("fig6", quick=True)
    assert api.run("fig6", quick=True) == run_experiment(exp, jobs=1)
