"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import MICROSECOND, MILLISECOND, SECOND, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.after(30, fired.append, "c")
    sim.after(10, fired.append, "a")
    sim.after(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.at(100, fired.append, i)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, "early")
    sim.at(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    sim.run()
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.at(10, fired.append, "x")
    sim.at(5, handle.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.after(10, chain, n + 1)

    sim.after(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert sim.pending == 7


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    h.cancel()
    assert sim.peek_time() == 9


def test_run_until_advances_clock_when_idle():
    sim = Simulator()
    sim.run(until=123)
    assert sim.now == 123


def test_time_constants():
    assert SECOND == 1_000_000_000
    assert MILLISECOND == 1_000_000
    assert MICROSECOND == 1_000


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=5).rng.random()
    b = Simulator(seed=5).rng.random()
    c = Simulator(seed=6).rng.random()
    assert a == b
    assert a != c


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_property_fire_order_is_sorted(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=40),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_cancelled_subset_never_fires(times, data):
    sim = Simulator()
    fired = []
    handles = [sim.at(t, lambda t=t: fired.append(t)) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(handles) - 1), max_size=len(handles))
    )
    for i in to_cancel:
        handles[i].cancel()
    sim.run()
    expected = sorted(t for i, t in enumerate(times) if i not in to_cancel)
    assert fired == expected


def test_run_until_advances_clock_past_quiet_window():
    """Events beyond the horizon must not stall poll loops (regression)."""
    sim = Simulator()
    sim.at(10_000, lambda: None)
    sim.run(until=1_000)
    assert sim.now == 1_000  # advanced despite the pending later event
    sim.run(until=2_000)
    assert sim.now == 2_000


def test_max_events_does_not_advance_clock():
    """Stopping on max_events must preserve causality for unprocessed events."""
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, fired.append, 2)
    sim.run(until=100, max_events=1)
    assert fired == [1]
    assert sim.now == 10  # NOT 100: event at 20 is still pending
    sim.run()
    assert fired == [1, 2]
