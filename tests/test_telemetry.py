"""Telemetry layer: recorder parity, Perfetto export schema, metrics math,
plus the engine/tracer observability fixes that ride along with it."""

import json
from collections import defaultdict

import pytest

from repro.analysis import PfcLogger, PortTracer
from repro.cc.base import CongestionControl
from repro.experiments.quickstart import run_quickstart
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.telemetry import (
    CHANNELS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Recorder,
    current_recorder,
    set_default_recorder,
    to_perfetto,
    write_events_jsonl,
    write_perfetto,
)
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


@pytest.fixture(autouse=True)
def _reset_default_recorder():
    """Never leak an installed recorder into other tests."""
    yield
    set_default_recorder(None)


def _pfc_heavy_scenario(seed=3):
    """Small incast that triggers PFC pauses, ECN-free, finishes quickly."""
    sim = Simulator(seed)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=64_000,
        headroom_per_port_per_prio=8_000,
        pfc=PfcConfig(enabled=True, xoff_bytes=4_000, dynamic=False),
    )
    net, senders, recv = star(sim, 2, rate_bps=100e9, link_delay_ns=100, switch_cfg=cfg)
    net.path_ports(senders[0], recv)[-1].ns_per_byte = 8.0  # ~1 Gbps bottleneck
    f = Flow(1, senders[0], recv, 100_000)
    FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=100_000))
    sim.run(until=2_000_000_000)
    assert f.done
    return sim, f


# ----------------------------------------------------------------------
# recorder on/off parity
# ----------------------------------------------------------------------
def test_results_identical_with_and_without_recorder():
    base = run_quickstart(low_bytes=300_000, high_bytes=100_000)
    rec = Recorder()
    set_default_recorder(rec)
    try:
        traced = run_quickstart(low_bytes=300_000, high_bytes=100_000)
    finally:
        set_default_recorder(None)
    snap = traced.pop("telemetry")
    assert json.dumps(base, sort_keys=True) == json.dumps(traced, sort_keys=True)
    assert snap["event_counts"]["cwnd"] > 0
    assert snap["metrics"]["counters"]["probe.sent"] >= 1


def test_recorder_does_not_consume_rng_or_schedule_events():
    def run(with_recorder):
        if with_recorder:
            set_default_recorder(Recorder())
        try:
            sim, f = _pfc_heavy_scenario()
        finally:
            set_default_recorder(None)
        return f.fct_ns(), sim.rng.random(), sim.events_processed

    assert run(False) == run(True)


def test_default_recorder_adopted_by_new_simulators():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        sim = Simulator()
        assert sim.telemetry is rec
        assert current_recorder() is rec
    finally:
        set_default_recorder(None)
    assert current_recorder() is None
    assert Simulator().telemetry.enabled is False


def test_channel_filtering_and_unknown_channel():
    rec = Recorder(channels=("pfc",))
    rec.queue_depth(10, "p", 0, 100, 100)
    rec.pfc(10, "sw", 0, 0, True, 5_000)
    assert rec.events["queue"] == []
    assert len(rec.events["pfc"]) == 1
    with pytest.raises(ValueError):
        Recorder(channels=("nope",))
    assert set(CHANNELS) >= {"flow_state", "queue", "pfc", "link", "buffer"}


def test_metrics_only_mode_keeps_no_events():
    rec = Recorder(events=False)
    set_default_recorder(rec)
    try:
        _pfc_heavy_scenario()
    finally:
        set_default_recorder(None)
    assert rec.event_counts() == {}
    assert rec.metrics.counters["pfc.pauses"].value >= 1


# ----------------------------------------------------------------------
# Perfetto export schema
# ----------------------------------------------------------------------
def _record_quickstart():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        run_quickstart(low_bytes=300_000, high_bytes=100_000)
    finally:
        set_default_recorder(None)
    return rec


def test_perfetto_trace_is_valid_and_ordered(tmp_path):
    rec = _record_quickstart()
    path = tmp_path / "trace.json"
    n = write_perfetto(rec, str(path))
    trace = json.loads(path.read_text())  # must round-trip as valid JSON
    events = trace["traceEvents"]
    assert len(events) == n > 0
    assert trace["displayTimeUnit"] == "ns"
    # timestamps are monotonic across the non-metadata stream
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)

    # B/E strictly matched per (pid, tid): never unbalanced, zero at the end
    depth = defaultdict(int)
    for e in events:
        key = (e["pid"], e.get("tid", 0))
        if e["ph"] == "B":
            depth[key] += 1
        elif e["ph"] == "E":
            depth[key] -= 1
            assert depth[key] >= 0, f"E without B on track {key}"
    assert all(v == 0 for v in depth.values())

    # the acceptance-criteria content: flow-state spans + queue counters
    span_names = {e["name"] for e in events if e["ph"] == "B"}
    assert {"running", "probe_wait", "linear_start"} <= span_names
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert any("q0" in name for name in counter_names)
    assert any(name.startswith("cwnd") for name in counter_names)


def test_perfetto_trace_contains_pfc_pause_spans():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        _pfc_heavy_scenario()
    finally:
        set_default_recorder(None)
    trace = to_perfetto(rec)
    pauses = [e for e in trace["traceEvents"] if e.get("ph") == "B" and e["name"] == "PAUSE"]
    assert pauses, "PFC pause spans missing from trace"
    assert all(e["cat"] == "pfc" for e in pauses)


def test_events_jsonl_schema(tmp_path):
    rec = _record_quickstart()
    path = tmp_path / "events.jsonl"
    n = write_events_jsonl(rec, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == n == sum(rec.event_counts().values())
    last_t = 0
    seen = set()
    for line in lines:
        obj = json.loads(line)
        assert obj["ch"] in CHANNELS
        assert obj["t"] >= last_t
        last_t = obj["t"]
        seen.add(obj["ch"])
    assert {"flow_state", "cwnd", "queue", "link"} <= seen


# ----------------------------------------------------------------------
# metrics arithmetic
# ----------------------------------------------------------------------
def test_counter_and_registry_snapshot():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    assert reg.counter("a") is reg.counters["a"]
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 5
    assert isinstance(Counter(), Counter)


def test_gauge_time_weighted_mean():
    g = Gauge()
    g.set(0, 10)
    g.set(10, 20)  # 10 held for [0,10)
    g.set(30, 0)  # 20 held for [10,30)
    # integral so far: 10*10 + 20*20 = 500 over 30ns
    assert g.time_weighted_mean() == pytest.approx(500 / 30)
    # extending the horizon holds the last value (0) → integral unchanged
    assert g.time_weighted_mean(until_t=50) == pytest.approx(500 / 50)
    assert g.min == 0 and g.max == 20 and g.samples == 3


def test_histogram_mean_and_percentiles():
    h = Histogram()
    for v in (1, 2, 4, 8):
        h.observe(v)
    assert h.count == 4
    assert h.mean() == pytest.approx((1 + 2 + 4 + 8) / 4)
    assert h.min == 1 and h.max == 8
    assert 0 < h.percentile(50) <= 4
    assert h.percentile(100) >= 4
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_time_weighting():
    h = Histogram()
    h.observe(100, weight=9.0)
    h.observe(1000, weight=1.0)
    # weighted mean: (100*9 + 1000*1) / 10
    assert h.mean() == pytest.approx(190.0)
    assert h.percentile(50) <= 128  # median falls in the 100s bucket


def test_empty_metrics_are_safe():
    assert Gauge().time_weighted_mean() == 0.0
    h = Histogram()
    assert h.mean() == 0.0
    assert h.percentile(50) == 0.0
    assert MetricsRegistry().snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# engine: O(1) pending + heap compaction (satellite)
# ----------------------------------------------------------------------
def test_pending_counter_tracks_cancellations():
    sim = Simulator()
    handles = [sim.at(i + 1, lambda: None) for i in range(10)]
    assert sim.pending == 10
    for h in handles[:4]:
        h.cancel()
        h.cancel()  # idempotent: must not double-decrement
    assert sim.pending == 6
    sim.run()
    assert sim.pending == 0
    assert sim.events_processed == 6


def test_cancel_after_fire_is_noop_for_counters():
    sim = Simulator()
    h = sim.at(5, lambda: None)
    sim.run()
    assert sim.pending == 0
    h.cancel()  # already fired: nothing to undo
    assert sim.pending == 0


def test_heap_compaction_bounds_cancelled_entries():
    sim = Simulator()
    handles = [sim.at(1_000_000 + i, lambda: None) for i in range(500)]
    assert len(sim._heap) == 500
    for h in handles[:400]:
        h.cancel()
    # compaction triggered once cancelled entries exceeded half the heap
    assert len(sim._heap) < 500
    assert sim.pending == 100
    fired = []
    sim.at(2_000_000, fired.append, "end")
    sim.run()
    assert fired == ["end"]
    assert len(sim._heap) == 0


def test_compaction_preserves_event_order():
    sim = Simulator()
    fired = []
    keep = [sim.at(t, fired.append, t) for t in range(100, 300, 2)]  # noqa: F841
    drop = [sim.at(t, fired.append, t) for t in range(101, 301, 2)]
    for h in drop:
        h.cancel()
    sim.run()
    assert fired == list(range(100, 300, 2))


# ----------------------------------------------------------------------
# PortTracer: stop() / horizon (satellite)
# ----------------------------------------------------------------------
def test_port_tracer_horizon_lets_run_terminate():
    sim = Simulator(1)
    net, senders, recv = star(sim, 1, switch_cfg=SwitchConfig(n_queues=2))
    tracer = PortTracer(sim, senders[0].port, interval_ns=1_000, horizon_ns=50_000)
    sim.run()  # no `until`: would never return if the tracer pinned the heap
    assert sim.now <= 50_000
    assert len(tracer.samples) == 50


def test_port_tracer_stop_cancels_pending_tick():
    sim = Simulator(1)
    net, senders, recv = star(sim, 1, switch_cfg=SwitchConfig(n_queues=2))
    tracer = PortTracer(sim, senders[0].port, interval_ns=1_000)
    sim.run(until=5_500)
    assert len(tracer.samples) == 5
    tracer.stop()
    assert sim.pending == 0
    sim.run()  # terminates: nothing left
    assert len(tracer.samples) == 5
    tracer.stop()  # idempotent


# ----------------------------------------------------------------------
# PfcLogger on the first-class switch hook (satellite)
# ----------------------------------------------------------------------
def test_pfc_logger_can_install_after_traffic_started():
    sim = Simulator(3)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=64_000,
        headroom_per_port_per_prio=8_000,
        pfc=PfcConfig(enabled=True, xoff_bytes=4_000, dynamic=False),
    )
    net, senders, recv = star(sim, 2, rate_bps=100e9, link_delay_ns=100, switch_cfg=cfg)
    net.path_ports(senders[0], recv)[-1].ns_per_byte = 8.0
    f = Flow(1, senders[0], recv, 100_000)
    FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=100_000))
    sim.run(until=10_000)  # traffic (and PFC state machines) already exist
    logger = PfcLogger(sim, net.switches[0])  # late install: the old footgun
    sim.run(until=2_000_000_000)
    assert f.done
    assert logger.pause_count() >= 1
    assert logger.resume_count() >= 1
    logger.detach()
    assert net.switches[0].pfc_listeners == []
    logger.detach()  # idempotent
