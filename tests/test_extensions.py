"""Tests for the §7 / Appendix-B extensions and start strategies."""

import pytest

from repro.cc import Swift, SwiftParams
from repro.core import (
    EXPONENTIAL,
    LINEAR,
    LINE_RATE,
    ChannelConfig,
    EcnPriorityConfig,
    StartRampCC,
    StartTier,
    WeightedPrioPlusCC,
    aggregate_floor_share,
    install_priority_marking,
    thresholds_for,
)
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

from tests.helpers import FakeSender


# ----------------------------------------------------------------------
# weighted virtual priority
# ----------------------------------------------------------------------
def _weighted(weight, tier=StartTier.MEDIUM):
    cc = WeightedPrioPlusCC(
        Swift(SwiftParams(target_scaling=False)),
        ChannelConfig(n_priorities=8),
        vpriority=2,
        weight=weight,
        tier=tier,
        probe_first=False,
    )
    sender = FakeSender()
    cc.attach(sender)
    return cc, sender


def test_weighted_rejects_bad_weight():
    with pytest.raises(ValueError):
        _weighted(1.0)
    with pytest.raises(ValueError):
        _weighted(-0.1)


def test_weight_zero_degenerates_to_strict():
    cc, sender = _weighted(0.0)
    cc.on_start()
    cc.on_ack(sender.ack(cc.d_limit + 1))
    cc.on_ack(sender.ack(cc.d_limit + 1))
    assert sender.stopped  # strict PrioPlus behaviour
    assert not cc.floor_mode


def test_weighted_enters_floor_instead_of_stopping():
    cc, sender = _weighted(0.25)
    cc.on_start()
    cc.inner.cwnd = 100_000.0
    cc.on_ack(sender.ack(cc.d_limit + 1))
    cc.on_ack(sender.ack(cc.d_limit + 1))
    assert not sender.stopped
    assert cc.floor_mode
    assert cc.inner.cwnd <= 0.25 * sender.bdp_bytes + 1


def test_weighted_resumes_when_contention_ends():
    cc, sender = _weighted(0.25)
    cc.on_start()
    cc.inner.cwnd = 100_000.0
    cc.on_ack(sender.ack(cc.d_limit + 1))
    cc.on_ack(sender.ack(cc.d_limit + 1))
    assert cc.floor_mode
    cc.on_ack(sender.ack(cc.d_target - 1000))
    assert not cc.floor_mode


def test_weighted_floor_holds_while_preempted():
    cc, sender = _weighted(0.1)
    cc.on_start()
    cc.inner.cwnd = 100_000.0
    for _ in range(5):
        cc.on_ack(sender.ack(cc.d_limit + 5_000))
    assert cc.floor_mode
    assert cc.inner.cwnd <= cc._floor_bytes() + 1


def test_aggregate_floor_share():
    assert aggregate_floor_share(0.1, 10, 10.0) == pytest.approx(0.1)
    assert aggregate_floor_share(0.1, 100, 10.0) == pytest.approx(1.0)  # inversion hazard
    with pytest.raises(ValueError):
        aggregate_floor_share(0.1, -1, 10.0)
    with pytest.raises(ValueError):
        aggregate_floor_share(0.1, 1, 0.0)


def test_weighted_end_to_end_keeps_residual_share():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    ch = ChannelConfig(n_priorities=8)
    lo = Flow(1, senders[0], recv, 2_000_000, vpriority=1, start_ns=0)
    hi = Flow(2, senders[1], recv, 1_500_000, vpriority=5, start_ns=150_000)
    s_lo = FlowSender(
        sim, net, lo,
        WeightedPrioPlusCC(Swift(SwiftParams(target_scaling=False)), ch, 1,
                           weight=0.2, tier=StartTier.LOW),
    )
    FlowSender(
        sim, net, hi,
        WeightedPrioPlusCC(Swift(SwiftParams(target_scaling=False)), ch, 5,
                           weight=0.2, tier=StartTier.HIGH),
    )
    # mid-contention checkpoint: the weighted low flow keeps making progress
    sim.run(until=700_000)
    progressed_at_700us = s_lo.acked_payload
    sim.run(until=1_000_000)
    assert s_lo.acked_payload > progressed_at_700us  # non-zero residual share
    sim.run(until=100_000_000)
    assert lo.done and hi.done


# ----------------------------------------------------------------------
# per-priority ECN marking
# ----------------------------------------------------------------------
def test_ecn_threshold_geometry():
    cfg = EcnPriorityConfig(k_top_bytes=80_000, ratio=0.5, n_priorities=8)
    ks = thresholds_for(cfg)
    assert len(ks) == 8
    assert ks[-1] == 80_000  # highest priority gets the full threshold
    for lower, higher in zip(ks, ks[1:]):
        assert lower == pytest.approx(higher / 2)
    with pytest.raises(ValueError):
        cfg.threshold(0)


def test_ecn_config_validation():
    with pytest.raises(ValueError):
        EcnPriorityConfig(ratio=0.0)
    with pytest.raises(ValueError):
        EcnPriorityConfig(k_top_bytes=0)


def test_install_patches_all_switch_ports():
    sim = Simulator(1)
    net, senders, recv = star(sim, 3, switch_cfg=SwitchConfig(n_queues=2))
    n = install_priority_marking(net, EcnPriorityConfig())
    assert n == len(net.switches[0].ports)
    assert all(p.ecn_marker is not None for p in net.switches[0].ports)
    assert all(p.ecn_k is None for p in net.switches[0].ports)


def test_ecn_extension_orders_dctcp_flows():
    def share(per_priority):
        from repro.experiments.ecn_priority import run_ecn_priority

        return run_ecn_priority(per_priority, duration_ns=1_500_000)

    uniform = share(False)
    prio = share(True)
    # uniform marking: roughly fair; per-priority marking: hi dominates
    assert abs(uniform["hi_share"] - uniform["lo_share"]) < 0.2
    assert prio["hi_share"] > 3 * prio["lo_share"]
    assert prio["utilization"] > 0.85


# ----------------------------------------------------------------------
# start strategies
# ----------------------------------------------------------------------
def test_start_strategy_validation():
    with pytest.raises(ValueError):
        StartRampCC("warp")
    with pytest.raises(ValueError):
        StartRampCC(LINEAR, n_rtts=0)


def test_start_strategy_initial_windows():
    for strategy, expect in (
        (LINE_RATE, lambda s: s.bdp_bytes),
        (EXPONENTIAL, lambda s: 1000.0),
        (LINEAR, lambda s: s.bdp_bytes / 8),
    ):
        cc = StartRampCC(strategy, n_rtts=8)
        sender = FakeSender()
        cc.attach(sender)
        assert cc.cwnd == pytest.approx(max(expect(sender), 1000.0))


def test_exponential_doubles_per_rtt():
    cc = StartRampCC(EXPONENTIAL, n_rtts=8)
    sender = FakeSender()
    cc.attach(sender)
    w0 = cc.cwnd
    sender.next_new_seq += 1
    cc.on_ack(sender.ack(sender.base_rtt))
    assert cc.cwnd == pytest.approx(min(2 * w0, cc.max_cwnd))


def test_ramp_freezes_on_queue_buildup():
    cc = StartRampCC(LINEAR, n_rtts=8)
    sender = FakeSender()
    cc.attach(sender)
    w = cc.cwnd
    sender.next_new_seq += 1
    cc.on_ack(sender.ack(sender.base_rtt + 10_000))  # visible queue
    assert cc.frozen
    sender.next_new_seq += 5
    cc.on_ack(sender.ack(sender.base_rtt))
    assert cc.cwnd == w  # no further growth
