"""Every (fast) example script runs cleanly as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_cc_integration.py",
    "noise_calibration.py",
    "queue_planning.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        head = script.read_text().split("\n", 3)
        assert head[0].startswith("#!"), f"{script.name}: missing shebang"
        assert '"""' in head[1], f"{script.name}: missing module docstring"


def test_link_failure_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "link_failure.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "routes rebuilt" in result.stdout
