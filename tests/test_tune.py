"""CCEnv: byte-identical resets, stepping modes, actions, observations, rewards.

The load-bearing property (ISSUE 9 acceptance): ``reset()`` materialises a
world byte-identical to a fresh build — so a tuning/RL loop over snapshots
explores exactly the dynamics a from-scratch run would.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune import CCEnv, jain_index, make_gymnasium_env, star_builder, star_world
from repro.tune.env import REWARDS


def _fingerprint(world) -> tuple:
    return (
        world.sim.now,
        world.sim.events_processed,
        world.sim.rng.random(),
        tuple((f.done, f.fct_ns() if f.done else None) for f in world.flows),
        tuple((s.acked_payload, s.snd_nxt, s.cc.cwnd) for s in world.senders),
    )


# ----------------------------------------------------------------------
# reset determinism
# ----------------------------------------------------------------------
@given(
    n_flows=st.integers(1, 4),
    kb=st.integers(2, 80),
    seed=st.integers(0, 2**31),
    events=st.integers(0, 3000),
)
@settings(max_examples=15, deadline=None)
def test_property_reset_is_byte_identical_to_fresh_build(n_flows, kb, seed, events):
    env = CCEnv(star_builder(n_flows=n_flows, kb=kb, seed=seed), stride_ns=10_000)
    env.reset()
    env.world.sim.run(max_events=events)

    fresh = star_world(n_flows=n_flows, kb=kb, seed=seed)
    fresh.sim.run(max_events=events)
    want = _fingerprint(fresh)
    assert _fingerprint(env.world) == want

    # a second reset lands on the identical world again
    env.reset()
    env.world.sim.run(max_events=events)
    assert _fingerprint(env.world) == want


def test_repeated_resets_and_full_episodes_are_identical():
    env = CCEnv(star_builder(n_flows=3, kb=40, seed=9, prioplus=True), stride_ns=25_000)

    def episode():
        env.reset()
        trail = []
        terminated = truncated = False
        while not (terminated or truncated):
            obs, r, terminated, truncated, _info = env.step()
            trail.append((obs["t_ns"], r, tuple(obs["flow_acked_bytes"])))
        return tuple(trail), _fingerprint(env.world)

    assert episode() == episode() == episode()


# ----------------------------------------------------------------------
# stepping modes
# ----------------------------------------------------------------------
def test_stride_stepping_advances_fixed_sim_time():
    env = CCEnv(star_builder(n_flows=2, kb=60, seed=1), stride_ns=15_000)
    env.reset()
    obs, _r, _term, _trunc, info = env.step()
    assert obs["t_ns"] == 15_000 and info["dt_ns"] == 15_000


def test_ack_batch_stepping_collects_acks():
    env = CCEnv(star_builder(n_flows=2, kb=60, seed=1), ack_batch=5)
    env.reset()
    before = sum(s.acked_count for s in env.world.senders)
    _obs, _r, term, trunc, _info = env.step()
    after = sum(s.acked_count for s in env.world.senders)
    assert term or trunc or after - before >= 5


def test_episode_terminates_with_all_flows_done():
    env = CCEnv(star_builder(n_flows=2, kb=10, seed=4), stride_ns=50_000)
    env.reset()
    terminated = truncated = False
    while not (terminated or truncated):
        _obs, _r, terminated, truncated, info = env.step()
    assert terminated and info["flows_done"] == 2


def test_horizon_truncates():
    env = CCEnv(star_builder(n_flows=2, kb=500, seed=4), stride_ns=40_000, horizon_ns=80_000)
    env.reset()
    env.step()
    _obs, _r, terminated, truncated, _info = env.step()
    assert truncated and not terminated


def test_constructor_validation():
    b = star_builder(n_flows=1, kb=10, seed=0)
    with pytest.raises(ValueError, match="exactly one"):
        CCEnv(b)
    with pytest.raises(ValueError, match="exactly one"):
        CCEnv(b, stride_ns=100, ack_batch=5)
    with pytest.raises(ValueError, match="unknown reward"):
        CCEnv(b, stride_ns=100, reward="nope")
    with pytest.raises(RuntimeError, match="reset"):
        CCEnv(b, stride_ns=100).step()


# ----------------------------------------------------------------------
# actions (cc.external hook)
# ----------------------------------------------------------------------
def test_cwnd_override_is_applied_and_clamped():
    env = CCEnv(star_builder(n_flows=2, kb=200, seed=2), stride_ns=1)
    env.reset()
    cc = env.world.senders[0].cc
    env.step({0: {"cwnd_bytes": 2_500.0}})
    assert cc.cwnd == pytest.approx(2_500.0)
    env.step({0: {"cwnd_bytes": 1e12}})
    assert cc.cwnd == cc.max_cwnd
    env.step({0: {"cwnd_bytes": 0.0}})
    assert cc.cwnd == cc.min_cwnd


def test_rate_override_converts_via_base_rtt():
    env = CCEnv(star_builder(n_flows=1, kb=200, seed=2), stride_ns=1)
    env.reset()
    cc = env.world.senders[0].cc
    env.step([{"rate_bps": 2e9}])
    assert cc.cwnd == pytest.approx(2e9 * cc.base_rtt / 8e9)


def test_prioplus_override_reanchors_rtt_bookkeeping():
    env = CCEnv(star_builder(n_flows=2, kb=100, seed=3, prioplus=True), stride_ns=30_000)
    env.reset()
    env.step()
    snd = env.world.senders[0]
    snd.cc.consec = 1
    snd.cc.rtt_pass = True
    snd.cc.dual_rtt_pass = True
    adopted = snd.cc.external_override(cwnd_bytes=4_000.0)
    assert adopted == snd.cc.inner.cwnd >= snd.cc.inner.min_cwnd
    # the override re-anchored Algorithm 1's per-RTT bookkeeping
    assert snd.cc.consec == 0
    assert snd.cc.rtt_pass is False and snd.cc.dual_rtt_pass is False
    assert snd.cc.rtt_end_seq == snd.snd_nxt
    # and the env action path reaches the same hook
    env.step({0: {"cwnd_bytes": 5_000.0}})
    assert snd.cc.cwnd >= snd.cc.min_cwnd


def test_bad_actions_raise():
    env = CCEnv(star_builder(n_flows=1, kb=10, seed=0), stride_ns=100)
    env.reset()
    with pytest.raises(ValueError, match="unknown override keys"):
        env.step({0: {"bogus": 1}})
    with pytest.raises(ValueError, match="indexes flow"):
        env.step({5: {"cwnd_bytes": 1000.0}})


def test_action_space_reflects_cc_clamps():
    env = CCEnv(star_builder(n_flows=3, kb=10, seed=0), stride_ns=100)
    space = env.action_space_for()
    assert space.shape == (3,)
    assert space.low == [s.cc.min_cwnd for s in env.world.senders]
    assert space.high == [s.cc.max_cwnd for s in env.world.senders]


# ----------------------------------------------------------------------
# observations
# ----------------------------------------------------------------------
def test_observation_shape_and_vpriority_occupancy():
    env = CCEnv(star_builder(n_flows=4, kb=80, seed=6, prioplus=True), stride_ns=30_000)
    obs, _info = env.reset()
    env.step()
    obs, _r, _t, _tr, _i = env.step()
    n = len(env.world.senders)
    assert len(obs["flow_delay_ns"]) == n
    assert len(obs["flow_cwnd_bytes"]) == n
    assert len(obs["port_backlog_bytes"]) == len(obs["port_paused"])
    # per-vpriority occupancy reconciles with per-sender inflight
    per_vprio = {}
    for snd in env.world.senders:
        per_vprio[snd.flow.vpriority] = per_vprio.get(snd.flow.vpriority, 0) + snd.inflight_bytes
    for vprio, total in per_vprio.items():
        assert obs["vprio_inflight_bytes"][vprio] == total
    assert sum(obs["vprio_inflight_bytes"]) == sum(obs["flow_inflight_bytes"])


# ----------------------------------------------------------------------
# rewards
# ----------------------------------------------------------------------
def test_goodput_reward_matches_acked_bytes():
    env = CCEnv(star_builder(n_flows=2, kb=60, seed=1), stride_ns=20_000)
    env.reset()
    _obs, r, _t, _tr, info = env.step()
    want = sum(info["acked_delta_bytes"]) * 8.0 / info["dt_ns"]
    assert r == pytest.approx(want)


def test_neg_fct_reward_integrates_unfinished_flow_time():
    env = CCEnv(star_builder(n_flows=2, kb=60, seed=1), stride_ns=20_000, reward="neg_fct")
    env.reset()
    _obs, r, _t, _tr, info = env.step()
    unfinished = 2 - info["flows_done"]
    assert r == pytest.approx(-unfinished * info["dt_ns"] / 1e3)


def test_fairness_reward_and_jain_index():
    assert jain_index([5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0]) == pytest.approx(1.0)  # zeros = inactive, not unfair
    assert jain_index([]) == 1.0
    assert 0.5 < jain_index([3, 1]) < 1.0
    env = CCEnv(
        star_builder(n_flows=2, kb=60, seed=1), stride_ns=20_000, reward="goodput_fairness"
    )
    env.reset()
    _obs, r, _t, _tr, info = env.step()
    gp = sum(info["acked_delta_bytes"]) * 8.0 / info["dt_ns"]
    assert r == pytest.approx(gp * jain_index(info["acked_delta_bytes"]))
    assert set(REWARDS) == {"goodput", "neg_fct", "goodput_fairness"}


# ----------------------------------------------------------------------
# optional gymnasium extra
# ----------------------------------------------------------------------
def test_gymnasium_adapter_gated_on_import():
    try:
        import gymnasium  # noqa: F401
    except ImportError:
        with pytest.raises(RuntimeError, match="gymnasium is not installed"):
            make_gymnasium_env(star_builder(n_flows=1, kb=10, seed=0), stride_ns=100)
    else:
        gym_env = make_gymnasium_env(star_builder(n_flows=1, kb=10, seed=0), stride_ns=100)
        obs, _info = gym_env.reset()
        assert obs["t_ns"] == 0
