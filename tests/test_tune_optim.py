"""Channel tuner: deterministic seeded search, checkpoint/resume, fleet parity.

Pins the ISSUE 9 acceptance properties: the search replays bit-identically
under a fixed seed, resuming from a checkpoint continues the exact same
candidate sequence, fleet rollouts match serial ones, and the reported
best placement can never be worse than the paper default.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune import (
    CEM,
    OPTIMIZERS,
    ChannelTuningEnv,
    RandomSearch,
    default_theta,
    evaluate_candidate,
    make_spec,
    run_search,
    theta_to_bands,
)
from repro.tune.channel_env import theta_to_channels
from repro.tune.rollout import RolloutBackend

QUICK = dict(workload="fault_flap", seed=0, quick=True)  # ~50 ms per evaluation


def _spec():
    return make_spec(**QUICK)


# ----------------------------------------------------------------------
# theta encoding: every sample decodes to a valid placement
# ----------------------------------------------------------------------
@given(
    theta=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=12).filter(
        lambda t: len(t) % 2 == 0
    )
)
@settings(max_examples=50, deadline=None)
def test_property_any_theta_decodes_to_valid_channels(theta):
    channels = theta_to_channels(theta)
    channels.validate()  # ordered, non-overlapping, above base RTT
    assert channels.n_priorities == len(theta) // 2


def test_default_theta_is_the_paper_placement():
    bands = theta_to_bands(default_theta(4))
    assert bands == [(4000, 6400), (8000, 10400), (12000, 14400), (16000, 18400)]


# ----------------------------------------------------------------------
# optimizer determinism across seeds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_seed_sweep_same_seed_replays_candidates(name):
    spec = _spec()
    for seed in (0, 1, 7, 1234):
        a = OPTIMIZERS[name](spec.space(), seed=seed, pop_size=4)
        b = OPTIMIZERS[name](spec.space(), seed=seed, pop_size=4)
        for _ in range(3):
            pa, pb = a.ask(), b.ask()
            assert pa == pb
            utils = [float(i) for i in range(len(pa))]
            a.tell(pa, utils)
            b.tell(pb, utils)
    # distinct seeds explore distinct candidates
    c = OPTIMIZERS[name](spec.space(), seed=0, pop_size=4)
    d = OPTIMIZERS[name](spec.space(), seed=1, pop_size=4)
    assert c.ask() != d.ask()


def test_incumbent_seeds_generation_zero():
    spec = _spec()
    inc = default_theta(spec.n_priorities)
    for name in OPTIMIZERS:
        opt = OPTIMIZERS[name](spec.space(), seed=3, pop_size=4, init_theta=inc)
        assert opt.ask()[0] == inc


def test_cem_contracts_toward_elites():
    spec = _spec()
    opt = CEM(spec.space(), seed=5, pop_size=8, init_theta=default_theta(spec.n_priorities))
    pop = opt.ask()
    # reward proximity to a fixed target point
    target = pop[3]
    utils = [-sum(abs(a - b) for a, b in zip(t, target)) for t in pop]
    sigma_before = list(opt.sigma)
    opt.tell(pop, utils)
    assert opt.best_theta == target
    assert all(s <= s0 or s0 == 0 for s, s0 in zip(opt.sigma, sigma_before))


# ----------------------------------------------------------------------
# checkpoint round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_optimizer_state_json_roundtrip_resumes_identically(name):
    spec = _spec()
    opt = OPTIMIZERS[name](
        spec.space(), seed=9, pop_size=4, init_theta=default_theta(spec.n_priorities)
    )
    pop = opt.ask()
    opt.tell(pop, [1.0, 3.0, 2.0, 0.5])
    state = json.loads(json.dumps(opt.state()))  # force a real JSON round-trip
    clone = OPTIMIZERS[name].load(state)
    assert clone.best_theta == opt.best_theta
    assert clone.best_utility == opt.best_utility
    for _ in range(2):
        pa, pb = opt.ask(), clone.ask()
        assert pa == pb
        opt.tell(pa, [0.0] * 4)
        clone.tell(pb, [0.0] * 4)


def test_optimizer_load_rejects_wrong_kind():
    spec = _spec()
    state = RandomSearch(spec.space(), seed=0).state()
    with pytest.raises(ValueError, match="checkpoint is for optimizer"):
        CEM.load(state)


def test_run_search_checkpoint_resume_matches_uninterrupted(tmp_path):
    spec = _spec()
    kwargs = dict(optimizer="cem", pop_size=4, seed=21)
    straight = run_search(spec, budget=12, **kwargs)

    ck = str(tmp_path / "ck.json")
    run_search(spec, budget=8, checkpoint_path=ck, **kwargs)
    resumed = run_search(spec, budget=12, checkpoint_path=ck, **kwargs)

    assert resumed["best"]["theta"] == straight["best"]["theta"]
    assert resumed["best"]["utility"] == straight["best"]["utility"]
    assert resumed["history"] == straight["history"]
    assert resumed["default"] == straight["default"]


def test_checkpoint_spec_mismatch_fails_fast(tmp_path):
    ck = str(tmp_path / "ck.json")
    run_search(_spec(), optimizer="cem", budget=4, pop_size=4, seed=0, checkpoint_path=ck)
    other = make_spec("flowsched_micro", seed=0, quick=True)
    with pytest.raises(ValueError, match="checkpoint .* was written for"):
        run_search(other, optimizer="cem", budget=4, pop_size=4, seed=0, checkpoint_path=ck)


# ----------------------------------------------------------------------
# rollouts: serial vs fleet parity
# ----------------------------------------------------------------------
def test_serial_and_fleet_rollouts_are_identical():
    spec = _spec()
    opt = RandomSearch(
        spec.space(), seed=2, pop_size=4, init_theta=default_theta(spec.n_priorities)
    )
    pop = opt.ask()
    with RolloutBackend(spec.to_dict(), jobs=1) as serial:
        want = serial.evaluate(pop, 0)
    with RolloutBackend(spec.to_dict(), jobs=2) as fleet:
        got = fleet.evaluate(pop, 0)
    assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True)


# ----------------------------------------------------------------------
# tuned >= default, search determinism end to end
# ----------------------------------------------------------------------
def test_search_is_deterministic_and_never_worse_than_default():
    spec = _spec()
    a = run_search(spec, optimizer="cem", budget=8, pop_size=4, seed=7)
    b = run_search(spec, optimizer="cem", budget=8, pop_size=4, seed=7)
    assert a["best"] == b["best"] and a["history"] == b["history"]
    # generation 0 evaluates the paper default, so best can never be worse
    assert a["best"]["utility"] >= a["default"]["utility"]
    assert a["default"]["bands"] == theta_to_bands(default_theta(spec.n_priorities))


def test_channel_tuning_env_single_step_episode():
    env = ChannelTuningEnv(_spec())
    obs, info = env.reset()
    assert obs == default_theta(env.spec.n_priorities)
    theta, reward, terminated, truncated, result = env.step(obs)
    assert terminated and not truncated
    assert reward == result["utility"]
    assert result["bands"] == theta_to_bands(obs)
    # the env evaluates exactly what evaluate_candidate reports
    again = evaluate_candidate(env.spec.to_dict(), obs)
    assert again["utility"] == reward
