"""Channel-configuration tests (§4.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channels import ChannelConfig


def test_paper_parameters():
    ch = ChannelConfig()
    assert ch.step_ns == 4000  # 4 us channel pitch
    # D_target^i = 4i us, D_limit^i = 4i + 2.4 us (paper §4.3.2)
    for i in (1, 3, 8):
        assert ch.target_offset_ns(i) == 4000 * i
        assert ch.limit_offset_ns(i) == 4000 * i + 2400


def test_absolute_thresholds_include_base_rtt():
    ch = ChannelConfig()
    assert ch.target_ns(2, 12_000) == 12_000 + 8_000
    assert ch.limit_ns(2, 12_000) == 12_000 + 8_000 + 2_400


def test_ordering_invariant_holds_for_paper_config():
    ChannelConfig(n_priorities=12).validate()


def test_out_of_range_priority_rejected():
    ch = ChannelConfig(n_priorities=4)
    with pytest.raises(ValueError):
        ch.target_offset_ns(5)
    with pytest.raises(ValueError):
        ch.target_offset_ns(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ChannelConfig(fluctuation_ns=0)
    with pytest.raises(ValueError):
        ChannelConfig(noise_ns=-1)
    with pytest.raises(ValueError):
        ChannelConfig(n_priorities=0)


@given(
    st.integers(min_value=10, max_value=1_000_000),
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_property_channels_never_overlap(a, b, n):
    """D_limit^{i-1} < D_target^i < D_limit^i for any valid (A, B, n)."""
    ch = ChannelConfig(fluctuation_ns=a, noise_ns=b, n_priorities=n)
    ch.validate()
    for i in range(1, n + 1):
        assert ch.target_offset_ns(i) < ch.limit_offset_ns(i)
        if i > 1:
            assert ch.limit_offset_ns(i - 1) < ch.target_offset_ns(i)


@given(st.integers(min_value=1, max_value=16))
@settings(max_examples=30, deadline=None)
def test_property_higher_priority_larger_thresholds(i):
    ch = ChannelConfig(n_priorities=17)
    assert ch.target_offset_ns(i + 1) > ch.target_offset_ns(i)
    assert ch.limit_offset_ns(i + 1) > ch.limit_offset_ns(i)


# ----------------------------------------------------------------------
# explicit bands (the representation repro.tune searches over)
# ----------------------------------------------------------------------
def test_bands_roundtrip_reproduces_uniform_placement():
    uniform = ChannelConfig(n_priorities=5)
    banded = ChannelConfig.from_bands(uniform.bands())
    assert banded.target_offset_ns(0) == uniform.target_offset_ns(0) == 0
    for i in range(1, 6):
        assert banded.target_offset_ns(i) == uniform.target_offset_ns(i)
        assert banded.limit_offset_ns(i) == uniform.limit_offset_ns(i)
    assert banded.n_priorities == 5


def test_band_step_ns_is_the_minimum_gap():
    ch = ChannelConfig.from_bands([(4000, 6400), (8000, 10400), (11000, 13000)])
    assert ch.step_ns == 600  # 11000 - 10400, the tightest inter-channel gap
    assert ChannelConfig.from_bands([(500, 900)]).step_ns == 500


def test_band_validation_errors_name_offending_priorities():
    with pytest.raises(ValueError, match="priority 1 target offset"):
        ChannelConfig.from_bands([(0, 1000)])
    with pytest.raises(ValueError, match="overlap between priorities 1 and 2"):
        ChannelConfig.from_bands([(1000, 2000), (1500, 3000)])
    with pytest.raises(ValueError, match="degenerate channel at priority 2"):
        ChannelConfig.from_bands([(1000, 2000), (3000, 3000)])
    with pytest.raises(ValueError, match="must be a \\(target_offset_ns"):
        ChannelConfig.from_bands([(1000,)])
    with pytest.raises(ValueError, match="at least one priority band"):
        ChannelConfig.from_bands([])
    with pytest.raises(ValueError, match="contradicts"):
        ChannelConfig(n_priorities=3, bands=[(1000, 2000)])


def test_json_roundtrip_both_kinds():
    for ch in (
        ChannelConfig(n_priorities=4),
        ChannelConfig(fluctuation_ns=6400, noise_ns=1600, n_priorities=2),
        ChannelConfig.from_bands([(3000, 5000), (9000, 12000)], noise_ns=500),
    ):
        clone = ChannelConfig.from_json(ch.to_json())
        assert clone == ch
        assert hash(clone) == hash(ch)
        for i in range(0, ch.n_priorities + 1):
            assert clone.target_offset_ns(i) == ch.target_offset_ns(i)
            assert clone.limit_offset_ns(i) == ch.limit_offset_ns(i)


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown channel config kind"):
        ChannelConfig.from_dict({"kind": "nope"})


@given(
    gaps=st.lists(st.integers(1, 10_000), min_size=1, max_size=8),
    widths=st.lists(st.integers(1, 10_000), min_size=8, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_property_any_positive_gaps_and_widths_form_valid_bands(gaps, widths):
    bands, limit = [], 0
    for gap, width in zip(gaps, widths):
        target = limit + gap
        limit = target + width
        bands.append((target, limit))
    ch = ChannelConfig.from_bands(bands)
    ch.validate()
    assert ch.bands() == bands
