"""Channel-configuration tests (§4.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channels import ChannelConfig


def test_paper_parameters():
    ch = ChannelConfig()
    assert ch.step_ns == 4000  # 4 us channel pitch
    # D_target^i = 4i us, D_limit^i = 4i + 2.4 us (paper §4.3.2)
    for i in (1, 3, 8):
        assert ch.target_offset_ns(i) == 4000 * i
        assert ch.limit_offset_ns(i) == 4000 * i + 2400


def test_absolute_thresholds_include_base_rtt():
    ch = ChannelConfig()
    assert ch.target_ns(2, 12_000) == 12_000 + 8_000
    assert ch.limit_ns(2, 12_000) == 12_000 + 8_000 + 2_400


def test_ordering_invariant_holds_for_paper_config():
    ChannelConfig(n_priorities=12).validate()


def test_out_of_range_priority_rejected():
    ch = ChannelConfig(n_priorities=4)
    with pytest.raises(ValueError):
        ch.target_offset_ns(5)
    with pytest.raises(ValueError):
        ch.target_offset_ns(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ChannelConfig(fluctuation_ns=0)
    with pytest.raises(ValueError):
        ChannelConfig(noise_ns=-1)
    with pytest.raises(ValueError):
        ChannelConfig(n_priorities=0)


@given(
    st.integers(min_value=10, max_value=1_000_000),
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_property_channels_never_overlap(a, b, n):
    """D_limit^{i-1} < D_target^i < D_limit^i for any valid (A, B, n)."""
    ch = ChannelConfig(fluctuation_ns=a, noise_ns=b, n_priorities=n)
    ch.validate()
    for i in range(1, n + 1):
        assert ch.target_offset_ns(i) < ch.limit_offset_ns(i)
        if i > 1:
            assert ch.limit_offset_ns(i - 1) < ch.target_offset_ns(i)


@given(st.integers(min_value=1, max_value=16))
@settings(max_examples=30, deadline=None)
def test_property_higher_priority_larger_thresholds(i):
    ch = ChannelConfig(n_priorities=17)
    assert ch.target_offset_ns(i + 1) > ch.target_offset_ns(i)
    assert ch.limit_offset_ns(i + 1) > ch.limit_offset_ns(i)
