"""Unit tests for the strict-priority output port."""

from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.port import Port


class SinkNode:
    def __init__(self):
        self.received = []

    def receive(self, pkt, in_idx):
        self.received.append(pkt)


def make_port(rate_bps=8e9, n_queues=4, **kwargs):
    sim = Simulator()
    port = Port(sim, rate_bps, n_queues=n_queues, **kwargs)
    sink = SinkNode()
    port.connect(sink, prop_delay_ns=100)
    return sim, port, sink


def pkt(size=1000, prio=0, seq=0, kind=DATA):
    return Packet(kind, size, src=0, dst=1, flow_id=1, seq=seq, priority=prio)


def test_serialisation_time():
    sim, port, sink = make_port(rate_bps=8e9)  # 1 byte/ns
    port.enqueue(pkt(size=500))
    sim.run()
    # 500 ns tx + 100 ns propagation
    assert sim.now == 600
    assert len(sink.received) == 1


def test_strict_priority_order():
    sim, port, sink = make_port()
    # enqueue low first, then high while the first low is transmitting
    port.enqueue(pkt(prio=0, seq=1))
    port.enqueue(pkt(prio=0, seq=2))
    port.enqueue(pkt(prio=3, seq=3))
    sim.run()
    seqs = [p.seq for p in sink.received]
    # seq 1 is already in transmission; the high-priority packet overtakes seq 2
    assert seqs == [1, 3, 2]


def test_fifo_within_priority():
    sim, port, sink = make_port()
    for i in range(5):
        port.enqueue(pkt(prio=1, seq=i))
    sim.run()
    assert [p.seq for p in sink.received] == list(range(5))


def test_pause_blocks_only_that_class():
    sim, port, sink = make_port()
    port.set_paused(0, True)
    port.enqueue(pkt(prio=0, seq=1))
    port.enqueue(pkt(prio=2, seq=2))
    sim.run()
    assert [p.seq for p in sink.received] == [2]
    port.set_paused(0, False)
    sim.run()
    assert [p.seq for p in sink.received] == [2, 1]


def test_resume_kicks_idle_port():
    sim, port, sink = make_port()
    port.set_paused(1, True)
    port.enqueue(pkt(prio=1))
    sim.run()
    assert sink.received == []
    port.set_paused(1, False)
    sim.run()
    assert len(sink.received) == 1


def test_ecn_marked_above_threshold():
    sim, port, sink = make_port(ecn_k=1500)
    p1, p2, p3 = pkt(), pkt(), pkt()
    port.enqueue(p1)  # queue empty -> dequeued immediately, no mark
    port.enqueue(p2)  # queue 0 + 1000 <= 1500 -> no mark
    port.enqueue(p3)  # queue 1000 + 1000 > 1500 -> mark
    sim.run()
    assert not p1.ecn
    assert not p2.ecn
    assert p3.ecn


def test_int_stamping_appends_hop():
    sim, port, sink = make_port(stamp_int=True)
    p = pkt()
    p.int_hops = []
    port.enqueue(p)
    sim.run()
    assert len(p.int_hops) == 1
    hop = p.int_hops[0]
    assert hop.rate_bps == port.rate_bps
    assert hop.qlen == 0  # dequeued from an otherwise empty port


def test_local_queue_mode_uses_local_prio():
    sim, port, sink = make_port(local_queues=True)
    lo = pkt(prio=0, seq=1)
    lo.local_prio = 0
    hi = pkt(prio=0, seq=2)
    hi.local_prio = 3
    blocker = pkt(prio=0, seq=0)
    blocker.local_prio = 0
    port.enqueue(blocker)  # starts transmitting
    port.enqueue(lo)
    port.enqueue(hi)
    sim.run()
    # same physical priority, but local queue 3 overtakes local queue 0
    assert [p.seq for p in sink.received] == [0, 2, 1]


def test_local_queue_pause_by_physical_class():
    sim, port, sink = make_port(local_queues=True)
    data = pkt(prio=0, seq=1)
    data.local_prio = 2
    ack = pkt(prio=1, seq=2, kind=ACK)
    ack.local_prio = 3
    port.set_paused(0, True)  # pause the physical data class
    port.enqueue(data)
    port.enqueue(ack)
    sim.run()
    assert [p.seq for p in sink.received] == [2]
    port.set_paused(0, False)
    sim.run()
    assert [p.seq for p in sink.received] == [2, 1]


def test_queue_byte_accounting():
    sim, port, sink = make_port()
    port.enqueue(pkt(size=1000, prio=0))
    port.enqueue(pkt(size=500, prio=0))
    port.enqueue(pkt(size=200, prio=1))
    # first packet is in transmission (already dequeued)
    assert port.total_bytes == 700
    sim.run()
    assert port.total_bytes == 0
    assert port.tx_bytes_total == 1700
    assert port.tx_packets_total == 3
