"""Hot-path overhaul tests: engine fast path, fused tx/delivery, packet pool.

Covers the allocation-free scheduling API (`call_at` / `call_after` /
`call_at2`), the fused transmission+propagation event on `Port`, the packet
free-list pool, and the satellite fixes that rode along (float clamping in
`Simulator.at`, `set_paused` range validation, `cut()` telemetry).
"""

import pytest

from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.packet import DATA, PACKET_POOL, IntHop, Packet, PacketPool
from repro.sim.pfc import PfcConfig
from repro.sim.port import Port
from repro.sim.switch import SwitchConfig
from repro.telemetry import Recorder, set_default_recorder
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


# ----------------------------------------------------------------------
# engine: allocation-free scheduling fast path
# ----------------------------------------------------------------------
def test_call_at_interleaves_with_classic_in_schedule_order():
    sim = Simulator()
    fired = []
    sim.at(50, fired.append, "classic1")
    sim.call_at(50, fired.append, "fast1")
    sim.at(50, fired.append, "classic2")
    sim.call_at(50, fired.append, "fast2")
    sim.run()
    assert fired == ["classic1", "fast1", "classic2", "fast2"]


def test_call_after_fires_at_offset_and_counts():
    sim = Simulator()
    fired = []
    sim.call_after(10, fired.append, "a")
    sim.call_after(30, fired.append, "b")
    assert sim.pending == 2
    n = sim.run()
    assert n == 2
    assert sim.pending == 0
    assert fired == ["a", "b"]
    assert sim.now == 30


def test_call_at_past_raises_call_after_negative_raises():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(50, lambda: None)
    with pytest.raises(ValueError):
        sim.call_after(-1, lambda: None)


def test_call_at2_orders_fn1_before_fn2_at_same_time():
    sim = Simulator()
    fired = []
    sim.call_at2(100, fired.append, ("first",), 100, fired.append, ("second",))
    assert sim.pending == 2
    sim.run()
    assert fired == ["first", "second"]


def test_call_at2_earlier_second_event_fires_first():
    sim = Simulator()
    fired = []
    # time wins over seq: fn2 at 50 beats fn1 at 100
    sim.call_at2(100, fired.append, ("late",), 50, fired.append, ("early",))
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 100


def test_call_at2_past_raises():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at2(100, lambda: None, (), 99, lambda: None, ())


def test_compaction_with_mixed_entry_shapes():
    sim = Simulator()
    fired = []
    handles = [sim.at(1000 + i, fired.append, f"h{i}") for i in range(200)]
    for i in range(50):
        sim.call_at(500 + i, fired.append, f"f{i}")
    # cancelling most classic events triggers _compact() mid-stream; the
    # bare-tuple fast entries must survive it
    for h in handles[:180]:
        h.cancel()
    assert sim.pending == 20 + 50
    sim.run()
    assert len(fired) == 70
    assert sim.pending == 0


def test_peek_time_sees_fast_entries_and_skips_cancelled():
    sim = Simulator()
    h = sim.at(5, lambda: None)
    sim.call_at(7, lambda: None)
    h.cancel()
    assert sim.peek_time() == 7


def test_run_max_events_counts_fast_entries():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.call_at(i + 1, fired.append, i)
    assert sim.run(max_events=4) == 4
    assert fired == [0, 1, 2, 3]
    assert sim.pending == 6
    sim.run()
    assert len(fired) == 10


# ----------------------------------------------------------------------
# satellite: Simulator.at float handling
# ----------------------------------------------------------------------
def test_at_float_fraction_below_now_clamps_to_now():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    assert sim.now == 100
    fired = []
    # a float a hair below now (truncates to 99) is a sub-ns artifact of
    # float delay math, not a past event: it must clamp, not raise
    sim.at(99.9999999, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [100]


def test_at_genuinely_past_float_still_raises():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(98.5, lambda: None)
    with pytest.raises(ValueError):
        sim.at(99, lambda: None)


# ----------------------------------------------------------------------
# port: fused tx/propagation event semantics
# ----------------------------------------------------------------------
class SinkNode:
    def __init__(self):
        self.received = []

    def receive(self, pkt, in_idx):
        self.received.append((pkt, in_idx))


def make_port(rate_bps=8e9, n_queues=4, prop_delay_ns=100, **kwargs):
    sim = Simulator()
    port = Port(sim, rate_bps, n_queues=n_queues, name="p", **kwargs)
    sink = SinkNode()
    port.connect(sink, prop_delay_ns=prop_delay_ns)
    return sim, port, sink


def pkt(size=1000, prio=0, seq=0, kind=DATA):
    return Packet(kind, size, src=0, dst=1, flow_id=1, seq=seq, priority=prio)


def test_pause_between_start_of_tx_and_delivery_keeps_delivery():
    # at 8e9 bps = 1 byte/ns: tx ends at 500, delivery at 600
    sim, port, sink = make_port()
    port.enqueue(pkt(size=500, seq=1))
    port.enqueue(pkt(size=500, seq=2))
    sim.at(200, port.set_paused, 0, True)
    sim.run(until=2_000)
    # the in-flight packet keeps its delivery; the queued one is gated
    assert [p.seq for p, _ in sink.received] == [1]
    sim.at(3_000, port.set_paused, 0, False)
    sim.run()
    assert [p.seq for p, _ in sink.received] == [1, 2]
    assert sim.now == 3_000 + 500 + 100


def test_cut_mid_flight_delivers_wire_packet_drops_queued():
    sim, port, sink = make_port()
    port.enqueue(pkt(size=500, seq=1))
    port.enqueue(pkt(size=500, seq=2))
    sim.at(200, port.cut)
    sim.run()
    # seq 1 was already on the wire at the cut; seq 2 dies in the queue
    assert [p.seq for p, _ in sink.received] == [1]
    assert port.dropped_on_cut == 1
    assert port.total_bytes == 0


def test_run_until_between_tx_end_and_delivery():
    sim, port, sink = make_port()
    port.enqueue(pkt(size=500, seq=1))
    sim.run(until=550)  # after the t1=500 wake, before the t2=600 delivery
    assert sink.received == []
    assert not port.busy  # the wake already freed the port
    assert sim.now == 550
    sim.run()
    assert [p.seq for p, _ in sink.received] == [1]
    assert sim.now == 600


def test_fused_and_classic_modes_agree(monkeypatch):
    def deliveries():
        sim, port, sink = make_port()
        for i in range(4):
            port.enqueue(pkt(size=200 + 100 * i, seq=i, prio=i % 2))
        sim.run()
        return [(p.seq, sim.now) for p, _ in sink.received], sim.events_processed

    fused, _ = deliveries()
    monkeypatch.setattr(Port, "FUSED", False)
    classic, _ = deliveries()
    assert fused == classic


# ----------------------------------------------------------------------
# satellite: set_paused range validation
# ----------------------------------------------------------------------
def test_set_paused_out_of_range_raises():
    sim, port, sink = make_port(n_queues=4)
    with pytest.raises(ValueError):
        port.set_paused(-1, True)
    with pytest.raises(ValueError):
        port.set_paused(4, True)
    port.set_paused(3, True)  # the top valid class is fine


# ----------------------------------------------------------------------
# satellite: cut() telemetry
# ----------------------------------------------------------------------
def test_cut_reports_only_drained_queues_and_link_idle():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        sim, port, sink = make_port(n_queues=4)
        port.enqueue(pkt(size=500, seq=1, prio=1))
        port.enqueue(pkt(size=500, seq=2, prio=1))
        sim.at(200, port.cut)  # mid-transmission of seq 1
        sim.run()
    finally:
        set_default_recorder(None)
    cut_queue_events = [e for e in rec.events["queue"] if e[0] == 200]
    # only queue 1 held packets: untouched queues must not be reported
    assert cut_queue_events == [(200, "p", 1, 0, 0)]
    assert (200, "p", False) in rec.events["link"]


def test_cut_when_idle_emits_no_link_event():
    rec = Recorder()
    set_default_recorder(rec)
    try:
        sim, port, sink = make_port(n_queues=4)
        port.enqueue(pkt(size=100, seq=1))  # tx ends at 100, delivery at 200
        sim.run()  # drain completely: port idle again
        assert not port.busy
        port.cut()
    finally:
        set_default_recorder(None)
    # idle-at-cut: the only idle link event is the end-of-tx one at t=100
    assert [e for e in rec.events["link"] if e[2] is False] == [(100, "p", False)]


# ----------------------------------------------------------------------
# packet pool
# ----------------------------------------------------------------------
def test_pool_acquire_resets_every_slot():
    pool = PacketPool(enabled=True)
    p = pool.acquire(DATA, 1000, src=1, dst=2, flow_id=3, seq=4, priority=5)
    p.ecn = True
    p.ecn_echo = True
    p.local_prio = 7
    p.echo_ts = 123
    p.ack_seq = 9
    p.sack = (1, 2)
    p.hash_salt = 42
    p.ctx = object()
    p.int_hops = [IntHop(1, 2, 3, 4.0)]
    pool.release(p)
    q = pool.acquire(DATA, 64, src=9, dst=8, flow_id=7)
    assert q is p  # recycled, not reconstructed
    assert q.size == 64 and q.src == 9 and q.dst == 8 and q.flow_id == 7
    assert q.seq == 0 and q.priority == 0 and q.local_prio == -1
    assert q.ecn is False and q.ecn_echo is False
    assert q.echo_ts == 0 and q.ack_seq == 0 and q.hash_salt == 0
    assert q.sack is None and q.ctx is None and q.int_hops is None
    assert pool.live == 1 and pool.reused == 1


def test_pool_release_clears_reference_slots():
    pool = PacketPool(enabled=True)
    p = pool.acquire(DATA, 1000, src=1, dst=2, flow_id=3)
    p.int_hops = [IntHop(1, 2, 3, 4.0)]
    p.ctx = object()
    p.sack = (0, 1)
    pool.release(p)
    # a parked packet must not pin other objects
    assert p.int_hops is None and p.ctx is None and p.sack is None


def test_pool_double_release_raises():
    pool = PacketPool(enabled=True)
    p = pool.acquire(DATA, 1000, src=1, dst=2, flow_id=3)
    pool.release(p)
    with pytest.raises(AssertionError):
        pool.release(p)


def test_pool_disabled_mode_constructs_and_ignores_release():
    pool = PacketPool(enabled=False)
    p = pool.acquire(DATA, 1000, src=1, dst=2, flow_id=3)
    pool.release(p)
    q = pool.acquire(DATA, 1000, src=1, dst=2, flow_id=3)
    assert q is not p
    assert pool.reused == 0 and pool.released == 0


def test_port_cut_returns_queued_pooled_packets_to_free_list():
    """Port-level pin of the cut contract: queued pooled packets go back to
    the free list at cut time, the in-flight one still delivers."""
    if not PACKET_POOL.enabled:
        pytest.skip("pool disabled via REPRO_PACKET_POOL=0")
    live_before = PACKET_POOL.live
    sim, port, sink = make_port()
    for i in range(5):
        port.enqueue(PACKET_POOL.acquire(DATA, 1000, src=0, dst=1, flow_id=1, seq=i))
    dropped = port.cut()
    assert dropped == 4  # head is mid-transmission, 4 queued die
    assert PACKET_POOL.live == live_before + 1  # only the in-flight one out
    sim.run()
    assert len(sink.received) == 1  # the wire finished its frame
    PACKET_POOL.release(sink.received[0][0])  # sink is the terminal owner
    assert PACKET_POOL.live == live_before
    assert port.restore() == 0  # restore never drops, by contract


def test_end_to_end_run_leaks_no_packets():
    if not PACKET_POOL.enabled:
        pytest.skip("pool disabled via REPRO_PACKET_POOL=0")
    live_before = PACKET_POOL.live
    sim = Simulator(11)
    cfg = SwitchConfig(n_queues=2, pfc=PfcConfig(enabled=False))
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flows = [Flow(i + 1, h, recv, 120_000) for i, h in enumerate(senders)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=60_000), rto_ns=10**10)
    sim.run(until=5_000_000_000)
    assert all(f.done for f in flows)
    sim.run()  # drain trailing ACK deliveries
    # every acquired packet reached a terminal owner and was recycled
    assert PACKET_POOL.live == live_before
