"""Unit + integration tests for TIMELY and DCQCN."""

import pytest

from repro.cc import Dcqcn, Timely
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import AckInfo, Flow
from repro.transport.sender import FlowSender

from tests.helpers import FakeSender


# ----------------------------------------------------------------------
# TIMELY
# ----------------------------------------------------------------------
def make_timely(**kw):
    cc = Timely(**kw)
    cc.attach(FakeSender())
    return cc


def _feed(cc, delays):
    sender = cc.sender
    for d in delays:
        sender.sim.now += cc.base_rtt + 1
        cc.on_ack(AckInfo(sender.sim.now, d, False, 1000, sender.next_new_seq))
        sender.next_new_seq += 1


def test_timely_grows_at_low_rtt():
    cc = make_timely()
    w0 = cc.cwnd
    _feed(cc, [cc.base_rtt + 1_000] * 5)
    assert cc.cwnd > w0


def test_timely_cuts_on_high_rtt():
    cc = make_timely(t_high_ns=50_000)
    w0 = cc.cwnd
    _feed(cc, [cc.base_rtt + 500_000] * 4)
    assert cc.cwnd < w0


def test_timely_gradient_mode_reacts_to_slope():
    cc = make_timely(t_low_ns=5_000, t_high_ns=10_000_000)
    mid = cc.base_rtt + 100_000
    _feed(cc, [mid] * 3)
    w_flat = cc.cwnd
    # rising RTTs inside the band -> positive gradient -> decrease
    _feed(cc, [mid + 50_000 * i for i in range(1, 5)])
    assert cc.cwnd < w_flat + 5 * cc.ai_bytes  # not pure additive growth


def test_timely_hyperactive_increase():
    cc = make_timely(t_low_ns=5_000, t_high_ns=10_000_000, hai_thresh=2)
    mid = cc.base_rtt + 200_000
    # falling RTTs -> negative gradient; after hai_thresh, increase is 5x
    _feed(cc, [mid, mid - 1_000, mid - 2_000])
    w = cc.cwnd
    _feed(cc, [mid - 3_000])
    assert cc.cwnd - w >= 4 * cc.ai_bytes


def test_timely_flow_completes():
    sim = Simulator(1)
    net, senders, recv = star(sim, 2, rate_bps=10e9, switch_cfg=SwitchConfig(n_queues=2))
    f1 = Flow(1, senders[0], recv, 400_000)
    f2 = Flow(2, senders[1], recv, 400_000)
    FlowSender(sim, net, f1, Timely())
    FlowSender(sim, net, f2, Timely())
    sim.run(until=500_000_000)
    assert f1.done and f2.done


# ----------------------------------------------------------------------
# DCQCN
# ----------------------------------------------------------------------
def make_dcqcn(**kw):
    cc = Dcqcn(**kw)
    cc.attach(FakeSender())
    return cc


def test_dcqcn_cuts_on_marked_interval():
    cc = make_dcqcn()
    sender = cc.sender
    w0 = cc.cwnd
    sender.sim.now += cc.update_interval_ns + 1
    cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, True, 1000, 0))
    assert cc.cwnd < w0
    assert cc.w_target == pytest.approx(w0)


def test_dcqcn_fast_recovery_halves_gap():
    cc = make_dcqcn()
    sender = cc.sender
    sender.sim.now += cc.update_interval_ns + 1
    cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, True, 1000, 0))
    cut = cc.cwnd
    target = cc.w_target
    sender.sim.now += cc.update_interval_ns + 1
    cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, False, 1000, 1))
    assert cc.cwnd == pytest.approx((cut + target) / 2)


def test_dcqcn_alpha_decays_without_marks():
    cc = make_dcqcn(g=0.25)
    a0 = cc.alpha
    sender = cc.sender
    for i in range(4):
        sender.sim.now += cc.update_interval_ns + 1
        cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, False, 1000, i))
    assert cc.alpha < a0


def test_dcqcn_hyper_increase_after_stages():
    cc = make_dcqcn(recovery_stages=1, hyper_ai_factor=10.0, ai_bytes=100.0)
    sender = cc.sender
    sender.sim.now += cc.update_interval_ns + 1
    cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, True, 1000, 0))
    targets = []
    for i in range(4):
        sender.sim.now += cc.update_interval_ns + 1
        cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, False, 1000, i + 1))
        targets.append(cc.w_target)
    # hyper stage grows the target much faster than additive
    assert targets[-1] - targets[-2] >= 10 * 100.0 - 1


def test_dcqcn_flow_completes_with_ecn_switch():
    sim = Simulator(2)
    cfg = SwitchConfig(n_queues=2, ecn_k_bytes=30_000)
    net, senders, recv = star(sim, 2, rate_bps=10e9, switch_cfg=cfg)
    f1 = Flow(1, senders[0], recv, 400_000)
    f2 = Flow(2, senders[1], recv, 400_000)
    FlowSender(sim, net, f1, Dcqcn())
    FlowSender(sim, net, f2, Dcqcn())
    sim.run(until=500_000_000)
    assert f1.done and f2.done
