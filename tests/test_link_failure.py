"""Link-failure handling: cut, reroute, recover."""

import pytest

from repro.cc import Swift, SwiftParams
from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import fat_tree, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


def test_cut_drops_queued_packets_and_releases_buffer():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    for i in range(2):  # 2x10G into 1x10G builds a real switch queue
        flow = Flow(i + 1, senders[i], recv, 200_000)
        FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=200_000), rto_ns=10**12)
    sim.run(until=60_000)
    sw = net.switches[0]
    used_before = sw.buffer.shared_used
    assert used_before > 0
    dropped = net.set_link_state(sw, recv, up=False)
    assert dropped > 0
    assert sw.buffer.shared_used < used_before  # accounting released


def test_unknown_link_rejected():
    sim = Simulator(1)
    net, senders, recv = star(sim, 2, switch_cfg=SwitchConfig(n_queues=2))
    with pytest.raises(ValueError):
        net.set_link_state(senders[0], senders[1], up=False)


def test_flow_survives_core_link_failure_on_fat_tree():
    """Cut one core link mid-flow: ECMP reroute + RTO recovery completes it."""
    sim = Simulator(5)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    src, dst = hosts[0], hosts[-1]
    flow = Flow(1, src, dst, 2_000_000)
    FlowSender(sim, net, flow, Swift(SwiftParams(target_scaling=False)), rto_ns=300_000)
    sim.run(until=100_000)
    assert not flow.done

    # cut the core link the flow is currently using (first core adjacency
    # of the aggregation switch on its path)
    path = net.path_ports(src, dst)
    agg_port = path[2]  # host -> edge -> agg -> core
    core = agg_port.peer
    agg = [s for s in net.switches if agg_port in s.ports][0]
    net.set_link_state(agg, core, up=False)
    net.rebuild_routes()

    sim.run(until=3_000_000_000)
    assert flow.done  # rerouted + retransmitted

    # restore and verify routes come back
    net.set_link_state(agg, core, up=True)
    net.rebuild_routes()
    flow2 = Flow(2, src, dst, 100_000)
    FlowSender(sim, net, flow2, Swift(SwiftParams(target_scaling=False)))
    sim.run(until=sim.now + 500_000_000)
    assert flow2.done


def test_reroute_excludes_down_links():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    src, dst = hosts[0], hosts[-1]
    path = net.path_ports(src, dst)
    agg_port = path[2]
    core = agg_port.peer
    agg = [s for s in net.switches if agg_port in s.ports][0]
    routes_before = len(agg.routes[dst.node_id])
    net.set_link_state(agg, core, up=False)
    net.rebuild_routes()
    down_idx = net._port_index(agg, agg_port)
    assert down_idx not in agg.routes.get(dst.node_id, [])
    assert len(agg.routes[dst.node_id]) == routes_before - 1
