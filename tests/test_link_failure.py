"""Link-failure handling: cut, reroute, recover."""

import pytest

from repro.cc import Swift, SwiftParams
from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.packet import PACKET_POOL
from repro.sim.switch import SwitchConfig
from repro.topology import fat_tree, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


def test_cut_drops_queued_packets_and_releases_buffer():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    for i in range(2):  # 2x10G into 1x10G builds a real switch queue
        flow = Flow(i + 1, senders[i], recv, 200_000)
        FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=200_000), rto_ns=10**12)
    sim.run(until=60_000)
    sw = net.switches[0]
    used_before = sw.buffer.shared_used
    assert used_before > 0
    dropped = net.set_link_state(sw, recv, up=False)
    assert dropped > 0
    assert sw.buffer.shared_used < used_before  # accounting released


def test_unknown_link_rejected():
    sim = Simulator(1)
    net, senders, recv = star(sim, 2, switch_cfg=SwitchConfig(n_queues=2))
    with pytest.raises(ValueError):
        net.set_link_state(senders[0], senders[1], up=False)


def test_flow_survives_core_link_failure_on_fat_tree():
    """Cut one core link mid-flow: ECMP reroute + RTO recovery completes it."""
    sim = Simulator(5)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    src, dst = hosts[0], hosts[-1]
    flow = Flow(1, src, dst, 2_000_000)
    FlowSender(sim, net, flow, Swift(SwiftParams(target_scaling=False)), rto_ns=300_000)
    sim.run(until=100_000)
    assert not flow.done

    # cut the core link the flow is currently using (first core adjacency
    # of the aggregation switch on its path)
    path = net.path_ports(src, dst)
    agg_port = path[2]  # host -> edge -> agg -> core
    core = agg_port.peer
    agg = [s for s in net.switches if agg_port in s.ports][0]
    net.set_link_state(agg, core, up=False)
    net.rebuild_routes()

    sim.run(until=3_000_000_000)
    assert flow.done  # rerouted + retransmitted

    # restore and verify routes come back
    net.set_link_state(agg, core, up=True)
    net.rebuild_routes()
    flow2 = Flow(2, src, dst, 100_000)
    FlowSender(sim, net, flow2, Swift(SwiftParams(target_scaling=False)))
    sim.run(until=sim.now + 500_000_000)
    assert flow2.done


def test_cut_mid_flight_leaks_no_packets_both_directions():
    """Cut a link with packets queued in *both* directions: every dropped
    packet must return to the pool, and RTO recovery completes all flows."""
    if not PACKET_POOL.enabled:
        pytest.skip("pool disabled via REPRO_PACKET_POOL=0")
    live_before = PACKET_POOL.live
    sim = Simulator(3)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1_000, switch_cfg=cfg)
    flows = [
        Flow(1, senders[0], recv, 150_000),  # incast: queue on switch->recv
        Flow(2, senders[1], recv, 150_000),
        Flow(3, recv, senders[0], 150_000),  # reverse: queue on recv's NIC
    ]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=150_000), rto_ns=300_000)
    sim.run(until=30_000)
    sw = net.switches[0]
    sw_to_recv = net.path_ports(senders[0], recv)[-1]
    recv_to_sw = net.path_ports(recv, senders[0])[0]
    assert sum(sw_to_recv.qbytes) > 0 and sum(recv_to_sw.qbytes) > 0
    dropped = net.set_link_state(sw, recv, up=False)
    assert dropped > 0
    sim.run(until=120_000)  # RTOs fire into the dead link
    net.set_link_state(sw, recv, up=True)
    sim.run(until=10_000_000_000)
    assert all(f.done for f in flows)
    sim.run()  # drain trailing ACK deliveries
    assert PACKET_POOL.live == live_before


def test_flap_while_pfc_paused_link_recovers():
    """Cut + restore a link whose egress class is PFC-paused throughout.

    The pause must gate transmission across the flap (restore does not leak
    paused traffic), and releasing the pause lets RTO recovery finish."""
    sim = Simulator(13)
    cfg = SwitchConfig(n_queues=4, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flow = Flow(1, senders[0], recv, 100_000, priority=0)
    FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=100_000), rto_ns=300_000)
    bottleneck = net.path_ports(senders[0], recv)[-1]
    sim.at(10_000, bottleneck.set_paused, 0, True)
    sim.run(until=20_000)
    assert bottleneck.paused[0] and sum(bottleneck.qbytes) > 0
    sw = net.switches[0]
    dropped = net.set_link_state(sw, recv, up=False)  # cut while paused
    assert dropped > 0
    sim.run(until=40_000)
    assert net.set_link_state(sw, recv, up=True) == 0  # flap back up, still paused
    rx_at_restore = recv.rx_packets
    sim.run(until=200_000)
    assert recv.rx_packets == rx_at_restore  # pause survives the flap
    bottleneck.set_paused(0, False)
    sim.run(until=10_000_000_000)
    assert flow.done


def test_reroute_excludes_down_links():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    src, dst = hosts[0], hosts[-1]
    path = net.path_ports(src, dst)
    agg_port = path[2]
    core = agg_port.peer
    agg = [s for s in net.switches if agg_port in s.ports][0]
    routes_before = len(agg.routes[dst.node_id])
    net.set_link_state(agg, core, up=False)
    net.rebuild_routes()
    down_idx = net._port_index(agg, agg_port)
    assert down_idx not in agg.routes.get(dst.node_id, [])
    assert len(agg.routes[dst.node_id]) == routes_before - 1
