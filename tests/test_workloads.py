"""Workload-generator tests: CDFs, Poisson arrivals, incast, coflows."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    WEBSEARCH_CDF,
    EmpiricalCdf,
    file_requests,
    file_requests_iter,
    incast_flows,
    poisson_flows,
    poisson_flows_iter,
    synthesize_coflows,
    websearch,
)


def _spec_tuple(s):
    return (s.src_idx, s.dst_idx, s.size_bytes, s.start_ns, s.tag)


def test_websearch_cdf_valid():
    cdf = websearch()
    assert cdf.quantile(0.0) == WEBSEARCH_CDF[0][0]
    assert cdf.quantile(1.0) == WEBSEARCH_CDF[-1][0]
    assert cdf.quantile(0.5) < cdf.quantile(0.9)


def test_websearch_mean_heavy_tailed():
    cdf = websearch()
    # mean far above median: the hallmark of the WebSearch distribution
    assert cdf.mean() > 4 * cdf.quantile(0.5)


def test_sampling_within_support():
    cdf = websearch()
    rng = random.Random(1)
    xs = [cdf.sample(rng) for _ in range(2000)]
    assert min(xs) >= WEBSEARCH_CDF[0][0]
    assert max(xs) <= WEBSEARCH_CDF[-1][0]


def test_empirical_mean_matches_analytic():
    cdf = websearch()
    rng = random.Random(2)
    emp = sum(cdf.sample(rng) for _ in range(40_000)) / 40_000
    assert emp == pytest.approx(cdf.mean(), rel=0.1)


def test_scaled_preserves_shape():
    cdf = websearch()
    small = cdf.scaled(0.1)
    assert small.mean() == pytest.approx(cdf.mean() * 0.1, rel=0.01)
    with pytest.raises(ValueError):
        cdf.scaled(0)


def test_invalid_cdfs_rejected():
    with pytest.raises(ValueError):
        EmpiricalCdf([(1, 0.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf([(1, 0.0), (2, 0.5)])  # does not reach 1
    with pytest.raises(ValueError):
        EmpiricalCdf([(2, 0.0), (1, 1.0)])  # x not monotone
    with pytest.raises(ValueError):
        EmpiricalCdf([(1, 0.5), (2, 0.2), (3, 1.0)])  # p not monotone


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_property_quantile_monotone(u):
    cdf = websearch()
    v = min(1.0, u + 0.01)
    assert cdf.quantile(u) <= cdf.quantile(v)


# ----------------------------------------------------------------------
# Poisson arrivals
# ----------------------------------------------------------------------
def test_poisson_load_roughly_met():
    rng = random.Random(3)
    cdf = websearch(0.1)
    duration = 50_000_000
    specs = poisson_flows(rng, 16, cdf, load=0.5, host_rate_bps=10e9, duration_ns=duration)
    offered = sum(s.size_bytes for s in specs) * 8e9 / duration
    capacity = 16 * 10e9
    assert offered / capacity == pytest.approx(0.5, rel=0.25)


def test_poisson_no_self_flows_and_sorted_feasible():
    rng = random.Random(4)
    specs = poisson_flows(rng, 8, websearch(0.1), 0.3, 10e9, 10_000_000)
    assert all(s.src_idx != s.dst_idx for s in specs)
    assert all(0 <= s.src_idx < 8 and 0 <= s.dst_idx < 8 for s in specs)
    assert all(0 <= s.start_ns < 10_000_000 for s in specs)


def test_poisson_rejects_bad_inputs():
    rng = random.Random(5)
    with pytest.raises(ValueError):
        poisson_flows(rng, 8, websearch(), 0.0, 10e9, 1000)
    with pytest.raises(ValueError):
        poisson_flows(rng, 1, websearch(), 0.5, 10e9, 1000)
    with pytest.raises(ValueError):
        poisson_flows(rng, 8, websearch(), 1.0, 10e9, 1000)  # load upper bound
    # iterator variants validate eagerly too, not on first next()
    with pytest.raises(ValueError):
        poisson_flows_iter(random.Random(5), 8, websearch(), 0.0, 10e9, 1000)


def test_poisson_stream_list_identical():
    """The streaming and list workload paths are byte-identical on a seed."""
    kw = dict(n_hosts=16, cdf=websearch(0.1), load=0.4, host_rate_bps=10e9,
              duration_ns=20_000_000)
    specs = poisson_flows(random.Random(42), **kw)
    streamed = list(poisson_flows_iter(random.Random(42), **kw))
    assert len(specs) > 100
    assert [_spec_tuple(s) for s in specs] == [_spec_tuple(s) for s in streamed]


def test_poisson_iter_sorted_and_lazy():
    """The iterator yields in start-time order without materializing the trace."""
    it = poisson_flows_iter(
        random.Random(9), 320, websearch(1.0), 0.5, 100e9, 10**12
    )  # ~17M arrivals if realized: must never be materialized
    head = [next(it) for _ in range(5000)]
    starts = [s.start_ns for s in head]
    assert starts == sorted(starts)
    assert all(s.size_bytes >= 1 for s in head)


def test_poisson_zero_and_one_arrival_durations():
    # a duration too short for any arrival is a valid empty workload
    assert poisson_flows(random.Random(0), 4, websearch(0.1), 0.5, 10e9, 1) == []
    assert list(poisson_flows_iter(random.Random(0), 4, websearch(0.1), 0.5, 10e9, 1)) == []
    # find a duration producing exactly one arrival; list and iter agree on it
    rng_probe = random.Random(1)
    first_gap = rng_probe.expovariate(1.0)  # just exercises rng independence
    assert first_gap > 0
    duration = 200_000
    specs = poisson_flows(random.Random(1), 4, websearch(0.1), 0.1, 1e9, duration)
    streamed = list(poisson_flows_iter(random.Random(1), 4, websearch(0.1), 0.1, 1e9, duration))
    assert [_spec_tuple(s) for s in specs] == [_spec_tuple(s) for s in streamed]


# ----------------------------------------------------------------------
# incast / file requests
# ----------------------------------------------------------------------
def test_incast_specs():
    specs = incast_flows(10, 5000, start_ns=77, dst_idx=10)
    assert len(specs) == 10
    assert all(s.dst_idx == 10 and s.size_bytes == 5000 and s.start_ns == 77 for s in specs)
    assert sorted(s.src_idx for s in specs) == list(range(10))


def test_file_requests_fanout_and_no_self():
    rng = random.Random(6)
    specs = file_requests(rng, 10, n_requests=5, fanout=3, piece_bytes=1000, duration_ns=1000)
    assert len(specs) == 15
    by_req = {}
    for s in specs:
        by_req.setdefault(s.tag, []).append(s)
    for flows in by_req.values():
        assert len(flows) == 3
        dst = flows[0].dst_idx
        assert all(f.dst_idx == dst and f.src_idx != dst for f in flows)


def test_file_requests_fanout_too_large():
    with pytest.raises(ValueError):
        file_requests(random.Random(), 4, 1, fanout=4, piece_bytes=10, duration_ns=10)
    with pytest.raises(ValueError):
        file_requests_iter(random.Random(), 4, 1, fanout=4, piece_bytes=10, duration_ns=10)


def test_file_requests_sorted_by_start():
    """Flows come back in arrival order (the streaming-admission contract)."""
    rng = random.Random(6)
    specs = file_requests(rng, 10, n_requests=40, fanout=3, piece_bytes=1000,
                          duration_ns=100_000)
    starts = [s.start_ns for s in specs]
    assert starts == sorted(starts)
    # ties between requests keep request order (stable sort): pieces of one
    # request stay contiguous
    seen = []
    for s in specs:
        if not seen or seen[-1] != s.tag:
            seen.append(s.tag)
    assert len(seen) == 40  # no request's pieces are interleaved with another's


def test_file_requests_same_traffic_as_unsorted_draws():
    """Sorting changed the order, not the traffic: the (src, dst, size, t,
    tag) multiset is exactly what the historical per-request draw loop
    produced from the same seed."""
    kw = dict(n_hosts=12, n_requests=25, fanout=4, piece_bytes=777, duration_ns=50_000)
    specs = file_requests(random.Random(123), **kw)

    # the historical draw loop, reproduced verbatim
    rng = random.Random(123)
    legacy = []
    for r in range(kw["n_requests"]):
        t = rng.randrange(max(1, kw["duration_ns"]))
        dst = rng.randrange(kw["n_hosts"])
        sources = rng.sample([h for h in range(kw["n_hosts"]) if h != dst], kw["fanout"])
        for s in sources:
            legacy.append((s, dst, kw["piece_bytes"], t, ("file", r)))
    assert sorted(_spec_tuple(s) for s in specs) == sorted(legacy)


def test_file_requests_stream_list_identical():
    kw = dict(n_hosts=10, n_requests=15, fanout=3, piece_bytes=500, duration_ns=10_000)
    specs = file_requests(random.Random(77), **kw)
    streamed = list(file_requests_iter(random.Random(77), **kw))
    assert [_spec_tuple(s) for s in specs] == [_spec_tuple(s) for s in streamed]


def test_incast_placeholder_dst():
    # dst_idx=-1 is the "receiver chosen later" placeholder; specs must carry
    # it through untouched so scenario code can rebind it
    specs = incast_flows(4, 1000)
    assert all(s.dst_idx == -1 for s in specs)
    assert sorted(s.src_idx for s in specs) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# coflows
# ----------------------------------------------------------------------
def test_synthesized_coflows_structure():
    rng = random.Random(7)
    coflows = synthesize_coflows(rng, 20, 50, duration_ns=1_000_000)
    assert len(coflows) == 50
    widths = [c.width for c in coflows]
    assert min(widths) >= 1
    assert max(widths) > min(widths)  # heavy tail produces variety
    for c in coflows:
        assert c.total_bytes == sum(f.size_bytes for f in c.flows)
        assert all(f.src_idx != f.dst_idx for f in c.flows)
        assert all(f.start_ns == c.start_ns for f in c.flows)


def test_coflow_sizes_heavy_tailed():
    rng = random.Random(8)
    coflows = synthesize_coflows(rng, 20, 200, duration_ns=1_000_000)
    sizes = sorted(c.total_bytes for c in coflows)
    mean = sum(sizes) / len(sizes)
    median = sizes[len(sizes) // 2]
    assert mean > 1.5 * median


def test_coflow_needs_enough_hosts():
    with pytest.raises(ValueError):
        synthesize_coflows(random.Random(), 3, 1, duration_ns=100)


def test_hadoop_and_storage_cdfs():
    from repro.workloads import ali_storage, hadoop

    h = hadoop()
    # Hadoop: tiny median, enormous tail (mining mix)
    assert h.quantile(0.5) < 2_000
    assert h.quantile(0.99) > 10_000_000
    assert h.mean() > 1000 * h.quantile(0.5)
    a = ali_storage()
    assert 1_000 <= a.quantile(0.5) <= 256_000
    assert a.quantile(1.0) == 4_000_000
    # both sample within support
    rng = random.Random(11)
    assert all(1 <= h.sample(rng) <= 1_000_000_000 for _ in range(500))
