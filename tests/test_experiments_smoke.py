"""Smoke tests: every experiment runner executes and returns sane shapes.

These run at deliberately tiny scale — they check plumbing and result
structure; the directional claims live in benchmarks/.
"""

import pytest

from repro.experiments.common import CCFactory, Mode
from repro.experiments.fig3_micro import _run_fig3a, _run_fig3b
from repro.experiments.fig6_dualrtt import _run_fig6
from repro.experiments.fig8_testbed import _run_fig8, run_staircase
from repro.experiments.fig9_fluct import _run_fig9
from repro.experiments.fig10_micro import _run_fig10b, _run_fig10c
from repro.experiments.fig13_noncongestive import run_fig13_point
from repro.experiments.flowsched import FlowSchedConfig, run_flowsched, size_group_boundaries
from repro.experiments.coflow_scenario import CoflowConfig, build_workload, run_coflow_mode
from repro.experiments.mltrain import MlTrainConfig, run_mltrain_mode
from repro.experiments.report import format_table
from repro.workloads import websearch


def test_fig3a_smoke():
    r = _run_fig3a(size_bytes=200_000, rate=25e9)
    assert set(r) >= {"hi_fct_over_ideal", "lo_fct_over_ideal", "lo_share_during_hi"}
    assert r["hi_fct_over_ideal"] >= 1.0


def test_fig3b_smoke():
    r = _run_fig3b(duration_ns=500_000, rate=25e9)
    assert 0 <= r["hi_share"] <= 1.1
    assert 0 <= r["lo_share"] <= 1.1


def test_fig6_smoke():
    r = _run_fig6()
    assert 1.0 <= r["lag_rtts"] <= 3.0


def test_fig8_rejects_unknown_mode():
    with pytest.raises(ValueError):
        _run_fig8(Mode.HPCC, stagger_ns=100_000)


def test_staircase_structure():
    r = run_staircase(Mode.PRIOPLUS, priorities=(1, 2), rate=10e9, stagger_ns=300_000)
    assert len(r["takeover_us"]) == 2
    assert len(r["reclaim_us"]) == 1
    assert 0 < r["utilization"] <= 1.1


def test_fig9_smoke():
    r = _run_fig9(Mode.PRIOPLUS, n_flows=2, duration_ns=1_000_000)
    assert 0 <= r["frac_below_limit"] <= 1
    assert r["d_limit_us"] > r["d_target_us"]


def test_fig10b_smoke():
    r = _run_fig10b(n_flows=10, rate=10e9, duration_ns=800_000)
    assert r["nflow_estimate"] >= 1


def test_fig10c_smoke_both_arms():
    for dual in (True, False):
        r = _run_fig10c(dual, n_each=2, rate=10e9, duration_ns=1_200_000, hi_start_ns=200_000)
        assert r["dual_rtt"] == dual
        assert r["hi_rate_mean_share"] > 0.3


def test_fig13_point_smoke():
    gap = run_fig13_point(10.0, 0.0, rate=10e9, stagger_ns=200_000)
    assert gap >= 0.0


def test_flowsched_smoke_all_modes():
    cfg = FlowSchedConfig(rate_bps=25e9, duration_ns=150_000, size_scale=0.05, seed=9)
    for mode in (Mode.PRIOPLUS, Mode.PHYSICAL_IDEAL, Mode.D2TCP, Mode.HPCC):
        r = run_flowsched(mode, 4, cfg)
        assert r["all_done"], mode
        assert r["fct"]["all"]["count"] == r["n_done"]


def test_size_group_boundaries_monotone():
    b = size_group_boundaries(websearch(), 8)
    assert b == sorted(b)
    assert len(b) == 7


def test_coflow_workload_and_one_mode():
    cfg = CoflowConfig(
        n_racks=2, hosts_per_rack=2, host_rate_bps=10e9, core_rate_bps=40e9,
        duration_ns=300_000, mean_flow_bytes=60_000, request_fanout=2,
        request_piece_bytes=30_000,
    )
    jobs, groups = build_workload(cfg)
    assert jobs and set(groups.values()) <= set(range(8))
    total = sum(j.total_bytes for j in jobs)
    budget = cfg.load * cfg.n_hosts * cfg.host_rate_bps * cfg.duration_ns / 8e9
    assert total == pytest.approx(budget, rel=0.6)
    ccts = run_coflow_mode(Mode.PRIOPLUS, cfg, jobs, groups)
    assert len(ccts) == len(jobs)  # every job completed
    assert all(v > 0 for v in ccts.values())


def test_mltrain_one_mode_smoke():
    cfg = MlTrainConfig(duration_ns=1_500_000, model_scale=0.0005)
    r = run_mltrain_mode(Mode.PRIOPLUS, cfg)
    assert set(r["iters_per_job"]) == {"resnet", "vgg"}
    assert r["total_iters"] >= 0


def test_ccfactory_layouts():
    fac = CCFactory(Mode.PRIOPLUS, n_priorities=8)
    assert fac.n_queues() == 2
    assert fac.data_priority(0) == 0
    assert fac.vpriority(0) == 8  # highest group -> largest channel
    phys = CCFactory(Mode.PHYSICAL, n_priorities=8)
    assert phys.n_queues() == 9
    assert phys.data_priority(0) == 7  # highest group -> top data queue
    assert phys.ack_priority(0) == 8
    same_ack = CCFactory(Mode.PRIOPLUS_SAME_ACK, n_priorities=8)
    assert same_ack.ack_priority(3) == same_ack.data_priority(3)


def test_ccfactory_swift_baseline_single_class():
    fac = CCFactory(Mode.SWIFT, n_priorities=8)
    assert fac.vpriority(0) == fac.vpriority(7) == 1


def test_report_table():
    out = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="t")
    assert "t" in out and "2.500" in out and "x" in out


def test_ablation_runners_smoke():
    from repro.experiments.ablations import (
        run_cardinality_ablation,
        run_collision_avoidance_ablation,
        run_filter_ablation,
    )

    r = run_collision_avoidance_ablation(True, n_low=4, rate=10e9, duration_ns=800_000)
    assert "total_probes" in r
    r = run_filter_ablation(2, duration_ns=600_000)
    assert 0 <= r["utilization"] <= 1.1
    r = run_cardinality_ablation(True, n_flows=8, rate=10e9, duration_ns=500_000)
    assert r["max_nflow"] >= 1


def test_table2_validation_smoke():
    from repro.experiments.table2_validation import run_table2_validation

    r = run_table2_validation(n_rtts=4, rate=10e9)
    assert set(r) == {"line_rate", "exponential", "linear"}
    for v in r.values():
        assert v["peak_extra_buffer_bdp"] >= 0
        assert v["fct_ns"] > 0


def test_ecn_priority_smoke():
    from repro.experiments.ecn_priority import run_ecn_priority

    r = run_ecn_priority(True, duration_ns=600_000)
    assert 0 <= r["hi_share"] <= 1.1


def test_run_figx_wrappers_are_deprecated_but_working():
    """The historical serial entry points warn and delegate to the same impl."""
    import warnings

    from repro.experiments.fig3_micro import run_fig3a

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        r = run_fig3a(size_bytes=200_000, rate=25e9)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert "repro.api.run('fig3a')" in str(caught[0].message)
    assert r == _run_fig3a(size_bytes=200_000, rate=25e9)
