"""Unit + property tests for the shared-buffer accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.buffer import SharedBuffer


def test_admission_within_capacity():
    buf = SharedBuffer(10_000)
    assert buf.try_admit_shared(0, 4_000)
    assert buf.shared_used == 4_000
    assert buf.free_shared == 6_000


def test_admission_rejected_when_pool_full():
    buf = SharedBuffer(10_000)
    assert buf.try_admit_shared(0, 10_000)
    assert not buf.try_admit_shared(0, 1)


def test_dynamic_threshold_blocks_long_queue():
    buf = SharedBuffer(10_000, dt_alpha=0.5)
    # free = 10k, threshold = 5k: a queue already at 6k may not grow
    assert not buf.try_admit_shared(6_000, 100)
    # but a short queue may
    assert buf.try_admit_shared(1_000, 100)


def test_threshold_shrinks_as_pool_fills():
    buf = SharedBuffer(10_000, dt_alpha=1.0)
    assert buf.try_admit_shared(0, 8_000)
    # free = 2000 now; a queue at 3000 exceeds the threshold
    assert not buf.try_admit_shared(3_000, 100)


def test_headroom_pool_is_separate():
    buf = SharedBuffer(10_000, headroom_bytes=4_000)
    assert buf.shared_capacity == 6_000
    assert buf.try_admit_headroom(4_000)
    assert not buf.try_admit_headroom(1)
    buf.release(4_000, from_headroom=True)
    assert buf.headroom_used == 0


def test_headroom_larger_than_capacity_rejected():
    with pytest.raises(ValueError):
        SharedBuffer(1_000, headroom_bytes=2_000)


def test_release_shared():
    buf = SharedBuffer(10_000)
    buf.try_admit_shared(0, 5_000)
    buf.release(5_000, from_headroom=False)
    assert buf.shared_used == 0


def test_over_release_raises():
    buf = SharedBuffer(10_000)
    with pytest.raises(AssertionError):
        buf.release(1, from_headroom=False)


def test_stats_counters():
    buf = SharedBuffer(10_000, headroom_bytes=2_000)
    buf.try_admit_shared(0, 1_000)
    buf.try_admit_headroom(500)
    buf.record_drop()
    assert buf.stats.admitted_shared == 1
    assert buf.stats.admitted_headroom == 1
    assert buf.stats.dropped == 1
    assert buf.stats.peak_shared == 1_000
    assert buf.stats.peak_headroom == 500


@given(
    st.lists(
        st.tuples(st.sampled_from(["admit", "release"]), st.integers(1, 2_000)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_accounting_never_negative_or_overflow(ops):
    buf = SharedBuffer(16_000, headroom_bytes=4_000)
    outstanding = []
    for op, size in ops:
        if op == "admit":
            if buf.try_admit_shared(0, size):
                outstanding.append(size)
        elif outstanding:
            buf.release(outstanding.pop(), from_headroom=False)
        assert 0 <= buf.shared_used <= buf.shared_capacity
        assert buf.shared_used == sum(outstanding)
