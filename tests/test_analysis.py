"""Analysis-module tests: percentiles, FCT stats, theory results."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FctStats,
    buffer_bandwidth_ratios,
    channel_width_ns,
    group_by,
    linear_start_is_optimal,
    percentile,
    potential_backlog,
    size_class,
    speedup,
    start_strategy_costs,
    summarize,
    swift_fluctuation_ns,
)
from repro.transport.flow import Flow


def test_percentile_basics():
    xs = [1, 2, 3, 4, 5]
    assert percentile(xs, 0) == 1
    assert percentile(xs, 50) == 3
    assert percentile(xs, 100) == 5
    assert percentile(xs, 25) == 2.0
    assert percentile([7], 99) == 7


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_property_percentile_bounded_and_monotone(xs):
    assert min(xs) <= percentile(xs, 50) <= max(xs)
    assert percentile(xs, 10) <= percentile(xs, 90)


def test_fct_stats():
    s = FctStats([100, 200, 300, 400])
    assert s.count == 4
    assert s.mean == 250
    assert s.p50 == 250
    assert s.max == 400
    d = s.as_dict()
    assert d["count"] == 4


def test_summarize_and_grouping():
    flows = []
    for i, size in enumerate([100, 400_000, 10_000_000]):
        f = Flow(i + 1, None, None, size, start_ns=0)
        f.completion_ns = 1000 * (i + 1)
        flows.append(f)
    stats = summarize(flows)
    assert stats.count == 3
    groups = group_by(flows, lambda f: size_class(f.size_bytes))
    assert set(groups) == {"small", "middle", "large"}


def test_summarize_unfinished_raises():
    f = Flow(1, None, None, 100)
    with pytest.raises(RuntimeError):
        summarize([f])


def test_size_classes_match_paper_boundaries():
    assert size_class(299_999) == "small"
    assert size_class(300_000) == "middle"
    assert size_class(5_999_999) == "middle"
    assert size_class(6_000_000) == "large"


def test_speedup():
    assert speedup(200, 100) == 2.0
    with pytest.raises(ValueError):
        speedup(100, 0)


# ----------------------------------------------------------------------
# theory
# ----------------------------------------------------------------------
def test_table2_closed_forms():
    c = start_strategy_costs(10)
    assert c["linear"]["bytes_delayed_bdp"] == 5.0
    assert c["linear"]["max_extra_buffer_bdp"] == 0.1
    assert c["exponential"]["bytes_delayed_bdp"] == 8.5
    with pytest.raises(ValueError):
        start_strategy_costs(0.5)


def test_linear_backlog_formula():
    """For the linear ramp, b(a) = R*tau^2/(2T) independent of a."""
    T, tau, R = 10.0, 1.0, 1.0
    b = potential_backlog(lambda t: R * t / T, T, tau)
    assert b == pytest.approx(R * tau * tau / (2 * T), rel=0.01)


def test_linear_beats_exponential_and_step():
    T, tau = 10.0, 1.0
    linear = potential_backlog(lambda t: t / T, T, tau)
    exponential = potential_backlog(lambda t: (2 ** (t / T * 6) - 1) / (2**6 - 1), T, tau)
    convex = potential_backlog(lambda t: (t / T) ** 3, T, tau)
    assert linear < exponential
    assert linear < convex


def test_theorem_4_1_numeric():
    linear, best_alt = linear_start_is_optimal()
    assert linear <= best_alt * 1.001


def test_swift_fluctuation_monotone_in_flows_and_ai():
    base = swift_fluctuation_ns(10, 150.0, 100e9, 20_000)
    assert swift_fluctuation_ns(20, 150.0, 100e9, 20_000) >= base
    assert swift_fluctuation_ns(10, 300.0, 100e9, 20_000) > base
    with pytest.raises(ValueError):
        swift_fluctuation_ns(0, 150.0, 100e9, 20_000)


def test_channel_width_components():
    step, margin = channel_width_ns(3200, 800)
    assert step == 4000
    assert margin == 2400


def test_fig2_data_sane():
    ratios = buffer_bandwidth_ratios()
    years = [y for _, y, _ in ratios]
    assert years == sorted(years)
    newest = ratios[-1][2]
    oldest = ratios[0][2]
    assert newest < oldest


# ----------------------------------------------------------------------
# streaming statistics (P² sketches) — the long-trace result reducers
# ----------------------------------------------------------------------
def test_p2_rejects_bad_quantile():
    from repro.analysis import P2Quantile

    for p in (0.0, 1.0, -0.1, 2.0):
        with pytest.raises(ValueError):
            P2Quantile(p)


def test_p2_exact_for_tiny_samples():
    from repro.analysis import P2Quantile

    q = P2Quantile(0.5)
    assert q.value() is None
    q.add(10.0)
    assert q.value() == 10.0
    q.add(20.0)
    q.add(30.0)
    # median of [10, 20, 30] is exact while the markers still hold raw samples
    assert q.value() == pytest.approx(20.0)


def test_p2_accuracy_on_heavy_tail():
    """P² p50/p99 land within a few percent of the exact sample percentile
    on a WebSearch-like heavy-tailed population (the accuracy envelope the
    long-trace experiment tables rely on)."""
    import random as _random

    from repro.analysis import P2Quantile, percentile

    rng = _random.Random(42)
    xs = [rng.paretovariate(1.3) * 1000 for _ in range(20_000)]
    p50, p99 = P2Quantile(0.5), P2Quantile(0.99)
    for x in xs:
        p50.add(x)
        p99.add(x)
    assert p50.value() == pytest.approx(percentile(xs, 50), rel=0.05)
    assert p99.value() == pytest.approx(percentile(xs, 99), rel=0.10)


def test_streaming_stats_matches_list_stats_shape():
    from repro.analysis import StreamingStats
    from repro.experiments.flowsched import _stats

    values = [1_000.0 * i for i in range(1, 301)]
    st = StreamingStats()
    for v in values:
        st.add(v)
    exact = _stats(values)
    approx = st.as_dict()
    assert set(approx) == set(exact) == {"count", "mean_us", "p50_us", "p99_us"}
    assert approx["count"] == exact["count"] == 300
    assert approx["mean_us"] == pytest.approx(exact["mean_us"], rel=1e-12)
    assert approx["p50_us"] == pytest.approx(exact["p50_us"], rel=0.05)
    assert approx["p99_us"] == pytest.approx(exact["p99_us"], rel=0.05)
    assert st.min == 1_000.0 and st.max == 300_000.0


def test_streaming_stats_empty_record():
    """n=0 exports the canonical empty record — same shape `_stats([])` now
    returns instead of raising ZeroDivisionError (the empty-group bugfix)."""
    from repro.analysis import StreamingStats
    from repro.experiments.flowsched import _stats

    empty = StreamingStats().as_dict()
    assert empty == {"count": 0, "mean_us": None, "p50_us": None, "p99_us": None}
    assert _stats([]) == empty
    assert StreamingStats().mean is None
