"""Unit tests for the PFC pause/resume state machine."""

from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcConfig, PfcIngressState


def make_state(xoff=1000, xon=None, dynamic=False, shared=100_000):
    sim = Simulator()
    buf = SharedBuffer(shared)
    signals = []
    cfg = PfcConfig(enabled=True, xoff_bytes=xoff, xon_bytes=xon, dynamic=dynamic)
    state = PfcIngressState(sim, cfg, buf, signals.append)
    return state, signals, buf


def test_pause_sent_above_xoff():
    state, signals, _ = make_state(xoff=1000)
    state.on_enqueue(900)
    assert signals == []
    state.on_enqueue(200)
    assert signals == [True]
    assert state.pauses_sent == 1


def test_pause_not_repeated_while_paused():
    state, signals, _ = make_state(xoff=1000)
    state.on_enqueue(2000)
    state.on_enqueue(2000)
    assert signals == [True]


def test_resume_below_xon():
    state, signals, _ = make_state(xoff=1000, xon=500)
    state.on_enqueue(1200)
    assert signals == [True]
    state.on_dequeue(600)  # 600 left > 500: still paused
    assert signals == [True]
    state.on_dequeue(200)  # 400 <= 500: resume
    assert signals == [True, False]
    assert state.resumes_sent == 1


def test_default_xon_close_below_xoff():
    cfg = PfcConfig(xoff_bytes=100_000)
    assert cfg.xon_bytes == 100_000 - 4096


def test_dynamic_threshold_tracks_free_shared():
    state, signals, buf = make_state(xoff=50_000, dynamic=True, shared=20_000)
    # dyn threshold = min(50k, 0.5 * free) = 10k initially
    buf.try_admit_shared(0, 16_000)  # free drops to 4k -> threshold 2k
    state.on_enqueue(3_000)
    assert signals == [True]


def test_disabled_pfc_never_signals():
    sim = Simulator()
    buf = SharedBuffer(100_000)
    signals = []
    state = PfcIngressState(sim, PfcConfig(enabled=False), buf, signals.append)
    state.on_enqueue(10**9)
    assert signals == []


def test_negative_accounting_raises():
    state, _, _ = make_state()
    state.on_enqueue(100)
    try:
        state.on_dequeue(200)
    except AssertionError:
        return
    raise AssertionError("expected negative accounting to raise")


def test_pause_resume_cycles():
    state, signals, _ = make_state(xoff=1000, xon=400)
    for _ in range(3):
        state.on_enqueue(1200)
        state.on_dequeue(1200)
    assert signals == [True, False] * 3
