"""Tests for trace file I/O and convergence metrics."""

import pytest

from repro.analysis import jain_index, stability, time_to_share, utilization
from repro.workloads import FlowSpec, TraceFormatError, load_trace, save_trace


# ----------------------------------------------------------------------
# trace I/O
# ----------------------------------------------------------------------
def test_round_trip(tmp_path):
    specs = [
        FlowSpec(0, 3, 15_000, 0, tag=("prio", 2)),
        FlowSpec(1, 2, 2_000_000, 125_000, tag=("prio", 0)),
    ]
    path = tmp_path / "trace.txt"
    save_trace(specs, path)
    loaded = load_trace(path)
    assert len(loaded) == 2
    for a, b in zip(specs, loaded):
        assert (a.src_idx, a.dst_idx, a.size_bytes, a.start_ns) == (
            b.src_idx, b.dst_idx, b.size_bytes, b.start_ns,
        )
        assert a.tag == b.tag


def test_load_known_format(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("2\n0 1 3 1000 0.000001\n1 0 0 500 0.5\n")
    specs = load_trace(path)
    assert specs[0].start_ns == 1_000
    assert specs[1].start_ns == 500_000_000
    assert specs[0].tag == ("prio", 3)


def test_load_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header comment\n1\n\n0 1 0 100 0\n")
    assert len(load_trace(path)) == 1


@pytest.mark.parametrize(
    "content",
    [
        "",  # empty
        "x\n",  # bad count
        "2\n0 1 0 100 0\n",  # count mismatch
        "1\n0 1 0 100\n",  # missing field
        "1\n0 0 0 100 0\n",  # src == dst
        "1\n0 1 0 0 0\n",  # zero size
        "1\n0 1 0 100 -1\n",  # negative start
        "1\na b c d e\n",  # garbage
    ],
)
def test_load_rejects_malformed(tmp_path, content):
    path = tmp_path / "bad.txt"
    path.write_text(content)
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_save_priority_of_override(tmp_path):
    specs = [FlowSpec(0, 1, 100, 0)]
    path = tmp_path / "t.txt"
    save_trace(specs, path, priority_of=lambda s: 7)
    assert load_trace(path)[0].tag == ("prio", 7)


# ----------------------------------------------------------------------
# convergence metrics
# ----------------------------------------------------------------------
def test_jain_perfect_and_hog():
    assert jain_index([1, 1, 1, 1]) == pytest.approx(1.0)
    assert jain_index([4, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_index([0, 0]) == 1.0
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([-1, 1])


def test_time_to_share():
    series = [(0, 10.0), (10, 40.0), (20, 95.0)]
    assert time_to_share(series, capacity=100, share=0.9) == 20
    assert time_to_share(series, capacity=100, share=0.3, t_from=5) == 10
    assert time_to_share(series, capacity=100, share=0.99) is None
    with pytest.raises(ValueError):
        time_to_share(series, 100, 0)


def test_utilization_aggregates_entities():
    a = [(0, 30.0), (10, 30.0)]
    b = [(0, 50.0), (10, 70.0)]
    assert utilization([a, b], capacity=100) == pytest.approx(0.9)
    assert utilization([], capacity=100) == 0.0
    with pytest.raises(ValueError):
        utilization([a], capacity=0)


def test_stability():
    assert stability([(0, 5.0), (1, 5.0), (2, 5.0)]) == 0.0
    assert stability([(0, 0.0), (1, 0.0)]) == 0.0
    wobbly = stability([(0, 1.0), (1, 9.0)])
    assert wobbly > 0.5
    with pytest.raises(ValueError):
        stability([], 0, 10)


def test_metrics_on_real_prioplus_run():
    """Same-priority PrioPlus flows converge to a fair share."""
    from repro.cc import Swift, SwiftParams
    from repro.core import ChannelConfig, PrioPlusCC, StartTier
    from repro.experiments.common import RateSampler
    from repro.sim.engine import Simulator
    from repro.sim.switch import SwitchConfig
    from repro.topology import star
    from repro.transport.flow import Flow
    from repro.transport.sender import FlowSender

    sim = Simulator(2)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 3, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    ch = ChannelConfig(n_priorities=4)
    snds = []
    for i in range(3):
        f = Flow(i + 1, senders[i], recv, 4_000_000, vpriority=2, start_ns=0)
        cc = PrioPlusCC(Swift(SwiftParams(target_scaling=False)), ch, 2,
                        tier=StartTier.MEDIUM, probe_first=False)
        snds.append(FlowSender(sim, net, f, cc))
    sampler = RateSampler(sim, snds, key=lambda s: s.flow.flow_id, interval_ns=200_000)
    sim.run(until=4_000_000)
    allocations = [sampler.average_rate_bps(i + 1, 1_000_000, 4_000_000) for i in range(3)]
    assert jain_index(allocations) > 0.85
    assert utilization([sampler.series[i + 1] for i in range(3)], 10e9, 1_000_000) > 0.85
