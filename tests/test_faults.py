"""repro.faults: plans, actors, reconvergence, and end-to-end determinism.

The guarantees under test:

* plans are pure data — JSON round-trip, canonical form, content hash;
* schedules expand deterministically (stochastic ones from their own RNG);
* every actor applies and cleanly undoes its mutation;
* ``set_link_state`` validates both endpoints before mutating anything;
* the same plan + seed produces byte-identical results across repeat runs,
  ``jobs=1`` vs ``jobs=2``, and telemetry on vs off;
* the fault plan enters the runner's cache key.
"""

import json
import random

import pytest

from repro.cc.base import CongestionControl
from repro.experiments.common import FunctionExperiment
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LinkImpairment,
    Schedule,
    build_actor,
    current_fault_plan,
    set_default_fault_plan,
)
from repro.runner import cache_key, run_experiment
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.telemetry import Recorder, set_default_recorder
from repro.topology import leaf_spine, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


# ----------------------------------------------------------------------
# plan / schedule data model
# ----------------------------------------------------------------------
def _plan() -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(
                "link_down",
                ["leaf0", "spine0"],
                Schedule("flap", at_ns=40_000, duration_ns=30_000, period_ns=100_000, count=2),
            ),
            FaultSpec(
                "link_degrade",
                ["leaf1", "spine1"],
                Schedule("oneshot", at_ns=50_000, duration_ns=80_000),
                rate_factor=0.5,
                drop_prob=0.01,
                delay_spike_ns=500,
            ),
        ],
        seed=7,
        detection_ns=20_000,
    )


def test_plan_json_round_trip_and_hash():
    plan = _plan()
    clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert clone.canonical() == plan.canonical()
    assert clone.plan_hash() == plan.plan_hash()
    # the hash tracks content
    other = FaultPlan(plan.specs, seed=8, detection_ns=plan.detection_ns)
    assert other.plan_hash() != plan.plan_hash()


def test_plan_save_load(tmp_path):
    path = str(tmp_path / "plan.json")
    plan = _plan()
    plan.save(path)
    assert FaultPlan.load(path).canonical() == plan.canonical()


def test_spec_validation():
    sched = Schedule("oneshot", at_ns=0, duration_ns=10)
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike", "tor0", sched)
    with pytest.raises(ValueError):
        FaultSpec("link_down", "tor0", sched)  # pair required
    with pytest.raises(ValueError):
        FaultSpec("switch_reboot", ["a", "b"], sched)  # single name required
    with pytest.raises(ValueError):
        FaultSpec("link_degrade", ["a", "b"], sched)  # no-op degrade
    with pytest.raises(ValueError):
        Schedule("flap", at_ns=0, duration_ns=100, period_ns=100, count=2)
    with pytest.raises(ValueError):
        Schedule("stochastic", at_ns=0, mtbf_ns=0, mttr_ns=10, until_ns=100)


def test_schedule_windows():
    flap = Schedule("flap", at_ns=10, duration_ns=5, period_ns=20, count=3)
    assert flap.windows(random.Random(0)) == [(10, 15), (30, 35), (50, 55)]
    sto = Schedule("stochastic", at_ns=0, until_ns=1_000_000, mtbf_ns=50_000, mttr_ns=10_000)
    w1 = sto.windows(random.Random(42))
    w2 = sto.windows(random.Random(42))
    assert w1 == w2 and w1  # deterministic under a fixed RNG
    assert all(0 < down < up <= 1_000_000 for down, up in w1)
    assert all(w1[i][1] <= w1[i + 1][0] for i in range(len(w1) - 1))  # non-overlap


# ----------------------------------------------------------------------
# actors
# ----------------------------------------------------------------------
def _two_spine_net(seed=3):
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = leaf_spine(
        sim, n_leaves=2, hosts_per_leaf=1, n_spines=2, host_rate_bps=10e9,
        oversubscription=1.0, link_delay_ns=1_000, switch_cfg=cfg,
    )
    return sim, net, hosts


def test_link_degrade_actor_scales_rate_and_restores():
    sim, net, hosts = _two_spine_net()
    spec = FaultSpec(
        "link_degrade", ["leaf0", "spine0"],
        Schedule("oneshot", at_ns=0, duration_ns=10), rate_factor=0.5,
    )
    actor = build_actor(net, spec, random.Random(0))
    before = [p.ns_per_byte for p in actor.ports]
    actor.inject()
    assert [p.ns_per_byte for p in actor.ports] == [b * 2 for b in before]
    actor.clear()
    assert [p.ns_per_byte for p in actor.ports] == before
    assert all(p.impairment is None for p in actor.ports)


def test_link_impairment_drop_and_spike_deterministic():
    imp1 = LinkImpairment(random.Random(5), drop_prob=0.3, delay_spike_ns=100)
    imp2 = LinkImpairment(random.Random(5), drop_prob=0.3, delay_spike_ns=100)
    seq1 = [imp1.transmit(t) for t in range(0, 10_000, 500)]
    seq2 = [imp2.transmit(t) for t in range(0, 10_000, 500)]
    assert seq1 == seq2
    assert imp1.corrupted > 0 and any(v < 0 for v in seq1)
    # FIFO: delivered times never go backwards
    delivered = [v for v in seq1 if v >= 0]
    assert delivered == sorted(delivered)


def test_switch_reboot_drops_queued_and_blackholes_while_dead():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1_000, switch_cfg=cfg)
    flows = [Flow(i + 1, senders[i], recv, 200_000) for i in range(2)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=200_000), rto_ns=200_000)
    sim.run(until=40_000)  # 2x10G into 1x10G: a queue exists
    sw = net.switches[0]
    drops_before = sw.drops
    dropped = sw.reboot()
    assert dropped > 0
    assert sw.buffer.shared_used == 0  # accounting fully released
    sim.run(until=45_000)  # frames already on the wire still deliver
    rx_settled = recv.rx_packets
    sim.run(until=80_000)  # hosts keep transmitting into the dead switch
    assert sw.drops > drops_before + dropped  # arrivals die at the dark port
    assert recv.rx_packets == rx_settled  # nothing crosses a dead switch
    sw.power_on()
    net.rebuild_routes()
    sim.run(until=5_000_000_000)
    assert all(f.done for f in flows)  # RTO recovery completes both flows
    assert sw.reboots == 1


def test_pfc_storm_actor_pauses_and_resumes():
    sim, net, hosts = _two_spine_net()
    spec = FaultSpec("pfc_storm", "leaf0", Schedule("oneshot", at_ns=0, duration_ns=10), port=0, prio=0)
    actor = build_actor(net, spec, random.Random(0))
    assert not actor.port.paused[0]
    actor.inject()
    assert actor.port.paused[0]
    actor.clear()
    assert not actor.port.paused[0]


def test_build_actor_rejects_bad_targets():
    sim, net, hosts = _two_spine_net()
    sched = Schedule("oneshot", at_ns=0, duration_ns=10)
    with pytest.raises(ValueError, match="not found"):
        build_actor(net, FaultSpec("switch_reboot", "nope", sched), random.Random(0))
    with pytest.raises(ValueError, match="not a switch"):
        build_actor(net, FaultSpec("switch_reboot", hosts[0].name, sched), random.Random(0))
    with pytest.raises(ValueError, match="out of range"):
        build_actor(net, FaultSpec("pfc_storm", "leaf0", sched, port=99), random.Random(0))
    with pytest.raises(ValueError, match="no link"):
        build_actor(
            net, FaultSpec("link_down", [hosts[0].name, hosts[1].name], sched), random.Random(0)
        )


# ----------------------------------------------------------------------
# network-layer contracts (satellites)
# ----------------------------------------------------------------------
def test_set_link_state_half_registered_raises_without_mutation():
    sim, net, hosts = _two_spine_net()
    leaf0 = next(s for s in net.switches if s.name == "leaf0")
    spine0 = next(s for s in net.switches if s.name == "spine0")
    # corrupt one side of the adjacency to simulate a half-registered link
    net._adj[spine0.node_id] = [
        (port, peer) for port, peer in net._adj[spine0.node_id] if peer is not leaf0
    ]
    with pytest.raises(ValueError, match="one endpoint"):
        net.set_link_state(leaf0, spine0, up=False)
    # nothing was cut: every port of both switches still up
    assert all(not p.down for p in leaf0.ports + spine0.ports)


def test_restore_returns_int_and_cut_restore_round_trip():
    sim, net, hosts = _two_spine_net()
    leaf0 = next(s for s in net.switches if s.name == "leaf0")
    spine0 = next(s for s in net.switches if s.name == "spine0")
    dropped = net.set_link_state(leaf0, spine0, up=False)
    assert isinstance(dropped, int)
    restored = net.set_link_state(leaf0, spine0, up=True)
    assert restored == 0  # restore drops nothing, by contract


# ----------------------------------------------------------------------
# injector: blackhole window + reconvergence
# ----------------------------------------------------------------------
def test_injector_blackholes_until_detection_then_reconverges():
    sim, net, hosts = _two_spine_net()
    plan = FaultPlan(
        [FaultSpec("link_down", ["leaf0", "spine0"],
                   Schedule("oneshot", at_ns=10_000, duration_ns=100_000))],
        seed=1,
        detection_ns=30_000,
    )
    inj = FaultInjector(sim, net, plan).arm()
    leaf0 = next(s for s in net.switches if s.name == "leaf0")
    dst = hosts[1].node_id
    routes_before = list(leaf0.routes[dst])
    assert len(routes_before) == 2  # ECMP over both spines
    sim.run(until=15_000)  # cut happened, detection pending
    assert leaf0.routes[dst] == routes_before  # stale routes: blackhole window
    sim.run(until=45_000)  # past detection: control plane reconverged
    assert len(leaf0.routes[dst]) == 1
    assert inj.injected == 1 and inj.reconverges == 1
    sim.run(until=200_000)  # restore at 110k + detection at 140k
    assert len(leaf0.routes[dst]) == 2  # both paths back
    assert inj.cleared == 1 and inj.reconverges == 2


def test_injector_arm_is_idempotent():
    sim, net, hosts = _two_spine_net()
    plan = FaultPlan(
        [FaultSpec("link_down", ["leaf0", "spine0"],
                   Schedule("oneshot", at_ns=10_000, duration_ns=10_000))],
        seed=1,
    )
    inj = FaultInjector(sim, net, plan).arm().arm()
    sim.run(until=100_000)
    assert inj.injected == 1 and inj.cleared == 1


# ----------------------------------------------------------------------
# end-to-end determinism (module-level so worker processes can pickle)
# ----------------------------------------------------------------------
def _mini_fault_run(seed: int = 3) -> dict:
    sim, net, hosts = _two_spine_net(seed)
    flows = [Flow(1, hosts[0], hosts[1], 200_000), Flow(2, hosts[1], hosts[0], 150_000)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=64_000), rto_ns=200_000)
    sim.run(until=1_000_000_000)
    inj = net.fault_injector
    return {
        "fcts": [f.fct_ns() if f.done else None for f in flows],
        "retransmits": [f.retransmits for f in flows],
        "drops": net.total_drops(),
        "faults": inj.stats() if inj is not None else None,
    }


MINI_FAULTS = FunctionExperiment(
    "mini-faults",
    {"s3": (_mini_fault_run, {"seed": 3}), "s4": (_mini_fault_run, {"seed": 4})},
)

_MINI_PLAN = FaultPlan(
    [
        FaultSpec(
            "link_down",
            ["leaf0", "spine0"],
            Schedule("flap", at_ns=30_000, duration_ns=40_000, period_ns=120_000, count=2),
        ),
        FaultSpec(
            "link_degrade",
            ["leaf1", "spine1"],
            Schedule("oneshot", at_ns=20_000, duration_ns=150_000),
            rate_factor=0.5,
            drop_prob=0.02,
            delay_spike_ns=1_000,
        ),
    ],
    seed=11,
    detection_ns=20_000,
)


def _canon(result) -> str:
    return json.dumps(result, sort_keys=True)


def test_same_plan_same_seed_byte_identical_repeat_runs():
    r1 = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    r2 = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    assert _canon(r1) == _canon(r2)
    # the plan visibly did something (wire corruption + injections)
    assert r1["s3"]["faults"]["injected"] == 3
    assert r1["s3"]["faults"]["wire_corrupted"] >= 0


def test_parallel_matches_serial_with_faults():
    serial = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    parallel = run_experiment(MINI_FAULTS, jobs=2, faults=_MINI_PLAN)
    assert _canon(serial) == _canon(parallel)


def test_telemetry_on_off_identical_with_faults():
    baseline = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    rec = Recorder(events=True)
    set_default_recorder(rec)
    try:
        traced = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    finally:
        set_default_recorder(None)
    assert _canon(baseline) == _canon(traced)
    # the recorder saw the fault channel
    assert rec.events["fault"]


def test_no_plan_means_no_injector():
    assert current_fault_plan() is None
    result = _mini_fault_run(seed=3)
    assert result["faults"] is None


def test_default_plan_is_restored_after_run_experiment():
    sentinel = FaultPlan([], seed=99)
    set_default_fault_plan(sentinel)
    try:
        run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
        assert current_fault_plan() is sentinel
    finally:
        set_default_fault_plan(None)


def test_faults_path_argument(tmp_path):
    path = str(tmp_path / "plan.json")
    _MINI_PLAN.save(path)
    from_path = run_experiment(MINI_FAULTS, jobs=1, faults=path)
    from_plan = run_experiment(MINI_FAULTS, jobs=1, faults=_MINI_PLAN)
    assert _canon(from_path) == _canon(from_plan)


def test_cache_key_tracks_fault_plan():
    points = list(MINI_FAULTS.points())
    bare = cache_key(MINI_FAULTS.name, points[0])
    faulted = cache_key(MINI_FAULTS.name, points[0], extra={"faults": _MINI_PLAN.to_dict()})
    other = cache_key(
        MINI_FAULTS.name, points[0],
        extra={"faults": FaultPlan(_MINI_PLAN.specs, seed=12).to_dict()},
    )
    assert len({bare, faulted, other}) == 3


def test_cached_faulted_results_do_not_alias_healthy(tmp_path):
    cache = str(tmp_path / "cache")
    healthy = run_experiment(MINI_FAULTS, jobs=1, cache=cache)
    faulted = run_experiment(MINI_FAULTS, jobs=1, cache=cache, faults=_MINI_PLAN)
    assert _canon(healthy) != _canon(faulted)
    # warm-cache re-reads return the matching variant
    assert _canon(run_experiment(MINI_FAULTS, jobs=1, cache=cache)) == _canon(healthy)
    assert _canon(run_experiment(MINI_FAULTS, jobs=1, cache=cache, faults=_MINI_PLAN)) == _canon(faulted)


# ----------------------------------------------------------------------
# experiment smoke: the paper-facing headline invariant
# ----------------------------------------------------------------------
def test_fault_flap_prioplus_invariants_quick():
    from repro.experiments.fault_experiments import run_fault_flap

    result = run_fault_flap("prioplus", rate=5e9, flaps=1, seed=1)
    inv = result["invariants"]
    assert inv["high_retains_residual"], result["rates"]
    assert inv["low_backs_off"], result["rates"]
    assert inv["reconverges"], result["rates"]
    assert result["faults"]["injected"] == 1
    assert result["faults"]["reconverges"] == 2  # cut + restore


def test_cli_lists_fault_experiments():
    from repro.__main__ import main

    import io
    import contextlib

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        assert main(["--list"]) == 0
    names = buf.getvalue().split()
    assert "fault_flap" in names and "fault_degrade" in names
