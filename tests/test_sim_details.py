"""Fine-grained simulator behaviours: pipelining, ECMP diversity, timing."""


from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.packet import DATA, Packet
from repro.sim.port import Port
from repro.sim.switch import SwitchConfig, ecmp_hash
from repro.topology import fat_tree, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


class _Recorder:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, pkt, in_idx):
        self.arrivals.append((self.sim.now, pkt.seq))


def test_port_pipelines_serialisation_and_propagation():
    """Packet k's arrival = k serialisations + 1 propagation (store & fwd)."""
    sim = Simulator()
    port = Port(sim, 8e9, n_queues=1)  # 1 byte/ns
    rec = _Recorder(sim)
    port.connect(rec, prop_delay_ns=500)
    for i in range(3):
        port.enqueue(Packet(DATA, 1000, 0, 1, 1, seq=i))
    sim.run()
    assert [t for t, _ in rec.arrivals] == [1500, 2500, 3500]


def test_back_to_back_packets_saturate_link():
    """No idle gaps between queued packets: goodput == line rate."""
    sim = Simulator()
    port = Port(sim, 80e9, n_queues=1)  # 10 bytes/ns
    rec = _Recorder(sim)
    port.connect(rec, prop_delay_ns=0)
    n = 50
    for i in range(n):
        port.enqueue(Packet(DATA, 1000, 0, 1, 1, seq=i))
    sim.run()
    assert sim.now == n * 100  # 100 ns per 1000B packet at 10 B/ns


def test_ecmp_spreads_flows_across_core():
    """Different flows between the same pod pair use different core paths."""
    sim = Simulator()
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9)
    src, dst = hosts[0], hosts[-1]
    agg = None
    # find an aggregation switch with multiple routes to dst
    for sw in net.switches:
        routes = sw.routes.get(dst.node_id, [])
        if len(routes) > 1:
            agg = sw
            break
    assert agg is not None
    chosen = {
        routes_idx
        for flow_id in range(64)
        for routes_idx in [
            agg.routes[dst.node_id][
                ecmp_hash(flow_id, agg.node_id) % len(agg.routes[dst.node_id])
            ]
        ]
    }
    assert len(chosen) > 1  # multiple next-hops actually exercised


def test_cross_pod_flows_complete_on_fat_tree():
    sim = Simulator(4)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    flows = []
    for i in range(8):
        f = Flow(i + 1, hosts[i], hosts[15 - i], 100_000)
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=20_000))
        flows.append(f)
    sim.run(until=1_000_000_000)
    assert all(f.done for f in flows)


def test_rtt_measurement_matches_analytic_base():
    """An unloaded flow's measured RTT equals the computed base RTT."""
    sim = Simulator()
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 1, rate_bps=10e9, link_delay_ns=2_000, switch_cfg=cfg)
    flow = Flow(1, senders[0], recv, 1000)
    s = FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=1000))
    sim.run(until=10_000_000)
    assert flow.done
    assert s.last_rtt == s.base_rtt  # single packet, no queue, no noise


def test_switch_forward_counter():
    sim = Simulator()
    cfg = SwitchConfig(n_queues=2)
    net, senders, recv = star(sim, 1, switch_cfg=cfg)
    senders[0].send(Packet(DATA, 100, senders[0].node_id, recv.node_id, 1))
    sim.run()
    assert net.switches[0].forwarded == 1
