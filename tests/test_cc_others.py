"""Unit tests for DCTCP, D2TCP, LEDBAT, HPCC and NoCC."""

import pytest

from repro.cc.base import CongestionControl
from repro.cc.dctcp import D2tcp, Dctcp
from repro.cc.hpcc import Hpcc
from repro.cc.ledbat import Ledbat
from repro.cc.nocc import NoCC
from repro.sim.packet import IntHop
from repro.transport.flow import AckInfo

from tests.helpers import FakeSender


# ----------------------------------------------------------------------
# DCTCP
# ----------------------------------------------------------------------
def make_dctcp(**kw):
    cc = Dctcp(**kw)
    cc.attach(FakeSender())
    return cc


def feed_rtt(cc, marked_fraction: float, n: int = 10):
    sender = cc.sender
    marked = int(n * marked_fraction)
    for i in range(n):
        cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, i < marked, 1000, sender.next_new_seq))
        sender.next_new_seq += 1
    sender.sim.now += 2 * cc.base_rtt  # close the RTT window
    cc.on_ack(AckInfo(sender.sim.now, cc.base_rtt, False, 1000, sender.next_new_seq))


def test_dctcp_alpha_tracks_mark_fraction():
    cc = make_dctcp(g=0.5)
    feed_rtt(cc, 1.0)
    assert cc.alpha > 0.3
    a1 = cc.alpha
    feed_rtt(cc, 0.0)
    assert cc.alpha < a1  # EWMA decays without marks


def test_dctcp_cuts_window_on_marked_rtt():
    cc = make_dctcp(g=1.0)
    w0 = cc.cwnd
    feed_rtt(cc, 1.0)
    feed_rtt(cc, 1.0)
    assert cc.cwnd < w0


def test_dctcp_grows_without_marks():
    cc = make_dctcp()
    w0 = cc.cwnd
    feed_rtt(cc, 0.0)
    assert cc.cwnd > w0


def test_dctcp_full_marking_halves():
    cc = make_dctcp(g=1.0)
    feed_rtt(cc, 1.0)  # alpha -> 1
    w = cc.cwnd
    feed_rtt(cc, 1.0)
    # alpha = 1 -> cut 50% (plus small AI from unmarked closing ack)
    assert cc.cwnd == pytest.approx(w / 2, rel=0.15)


# ----------------------------------------------------------------------
# D2TCP
# ----------------------------------------------------------------------
class _FlowStub:
    deadline_ns = None


class _D2Sender(FakeSender):
    def __init__(self, remaining=100_000, **kw):
        super().__init__(**kw)
        self.remaining_bytes = remaining
        self.flow = _FlowStub()


def test_d2tcp_urgency_clamps():
    cc = D2tcp(deadline_ns=1, d_min=0.5, d_max=2.0)
    cc.attach(_D2Sender())
    cc.sender.sim.now = 100  # deadline passed
    assert cc.urgency() == 2.0


def test_d2tcp_urgent_cuts_less():
    """Near-deadline (d>1) penalty is smaller than far-deadline (d<1)."""
    urgent = D2tcp(deadline_ns=10_000)  # almost no time left
    urgent.attach(_D2Sender(remaining=10_000_000))
    relaxed = D2tcp(deadline_ns=10_000_000_000)  # all the time in the world
    relaxed.attach(_D2Sender(remaining=1_000))
    urgent.alpha = relaxed.alpha = 0.5
    assert urgent.cut_fraction() < relaxed.cut_fraction()


def test_d2tcp_without_deadline_behaves_like_dctcp():
    cc = D2tcp()
    cc.attach(_D2Sender())
    cc.alpha = 0.5
    assert cc.urgency() == 1.0
    assert cc.cut_fraction() == pytest.approx(0.25)


# ----------------------------------------------------------------------
# LEDBAT
# ----------------------------------------------------------------------
def test_ledbat_grows_below_target_shrinks_above():
    cc = Ledbat(target_queuing_ns=20_000)
    cc.attach(FakeSender())
    w0 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt + 1_000, False, 1000, 0))
    assert cc.cwnd > w0
    w1 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt + 100_000, False, 1000, 1))
    assert cc.cwnd < w1


def test_ledbat_decrease_bounded_per_ack():
    cc = Ledbat(target_queuing_ns=10_000, max_decrease_per_rtt=0.5)
    cc.attach(FakeSender())
    cc.cwnd = 10_000.0
    cc.on_ack(AckInfo(0, cc.base_rtt + 10_000_000, False, 1000, 0))
    # one ack of 1000B may remove at most 0.5 * cwnd * (1000/cwnd) bytes... bounded
    assert cc.cwnd >= 10_000.0 * 0.95 - 500


def test_ledbat_target_delay_property():
    cc = Ledbat(target_queuing_ns=7_000)
    cc.attach(FakeSender(base_rtt=10_000))
    assert cc.target_delay_ns == 17_000


# ----------------------------------------------------------------------
# HPCC
# ----------------------------------------------------------------------
def hop(qlen=0, tx=0, ts=0, rate=100e9):
    return IntHop(qlen, tx, ts, rate)


def test_hpcc_shrinks_under_high_utilisation():
    cc = Hpcc()
    cc.attach(FakeSender())
    sender = cc.sender
    w0 = cc.cwnd
    # back-to-back INT showing a full link: tx advances at line rate + queue
    cc.on_ack(AckInfo(0, cc.base_rtt, False, 1000, 0, int_hops=[hop(qlen=500_000, tx=0, ts=0)]))
    sender.sim.now += cc.base_rtt * 2
    cc.on_ack(
        AckInfo(
            sender.sim.now,
            cc.base_rtt,
            False,
            1000,
            1,
            int_hops=[hop(qlen=500_000, tx=300_000, ts=24_000)],
        )
    )
    assert cc.cwnd < w0


def test_hpcc_grows_when_idle():
    cc = Hpcc()
    cc.attach(FakeSender())
    sender = cc.sender
    cc.cwnd = cc.w_ref = 10_000.0
    last = cc.cwnd
    for i in range(3):
        sender.sim.now += 2 * cc.base_rtt
        cc.on_ack(
            AckInfo(sender.sim.now, cc.base_rtt, False, 1000, i, int_hops=[hop(tx=i * 100, ts=sender.sim.now)])
        )
    assert cc.cwnd > last


def test_hpcc_needs_int_flag():
    assert Hpcc.needs_int
    assert not Dctcp.needs_int


def test_hpcc_ignores_ack_without_int():
    cc = Hpcc()
    cc.attach(FakeSender())
    w0 = cc.cwnd
    cc.on_ack(AckInfo(0, cc.base_rtt, False, 1000, 0, int_hops=None))
    assert cc.cwnd == w0


# ----------------------------------------------------------------------
# NoCC / base
# ----------------------------------------------------------------------
def test_nocc_window_far_above_bdp():
    cc = NoCC()
    sender = FakeSender()
    cc.attach(sender)
    assert cc.cwnd >= 50 * sender.bdp_bytes
    w = cc.cwnd
    cc.on_timeout()
    assert cc.cwnd == w  # no backoff, that's the point


def test_base_default_init_is_bdp():
    cc = CongestionControl()
    sender = FakeSender()
    cc.attach(sender)
    assert cc.cwnd == pytest.approx(max(sender.bdp_bytes, 1000))
