"""Transport-layer tests: reliability, FCT sanity, pacing, probes, loss."""

import pytest

from repro.cc.base import CongestionControl
from repro.cc.swift import Swift
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

from tests.helpers import tiny_star


def test_single_flow_completes_and_fct_sane():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 100_000)
    s = FlowSender(sim, net, flow, Swift())
    sim.run(until=100_000_000)
    assert flow.done
    assert flow.sender_done_ns is not None
    ideal = flow.size_bytes * 8e9 / 10e9
    assert flow.fct_ns() >= ideal
    assert flow.fct_ns() < ideal * 3 + 10 * s.base_rtt


def test_flow_smaller_than_mtu():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 1)
    FlowSender(sim, net, flow, Swift())
    sim.run(until=10_000_000)
    assert flow.done


def test_flow_exact_mtu_multiple():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 5000)
    s = FlowSender(sim, net, flow, Swift(), mtu=1000)
    assert s.n_packets == 5
    assert s.payload_of(4) == 1000
    sim.run(until=10_000_000)
    assert flow.done


def test_last_packet_partial_payload():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 2500)
    s = FlowSender(sim, net, flow, Swift(), mtu=1000)
    assert s.n_packets == 3
    assert s.payload_of(2) == 500


def test_zero_size_flow_rejected():
    sim, net, senders, recv = tiny_star(1)
    with pytest.raises(ValueError):
        Flow(1, senders[0], recv, 0)


def test_two_flows_share_bottleneck_fairly():
    sim, net, senders, recv = tiny_star(2)
    f1 = Flow(1, senders[0], recv, 400_000)
    f2 = Flow(2, senders[1], recv, 400_000)
    FlowSender(sim, net, f1, Swift())
    FlowSender(sim, net, f2, Swift())
    sim.run(until=100_000_000)
    assert f1.done and f2.done
    # both roughly 2x the solo time: neither starved
    solo = 400_000 * 8e9 / 10e9
    assert f1.fct_ns() < 3.2 * solo
    assert f2.fct_ns() < 3.2 * solo


def test_sub_mtu_window_paces():
    """cwnd of half a packet sends ~1 packet per 2 RTTs."""
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000)
    cc = CongestionControl(init_cwnd_bytes=500.0)
    s = FlowSender(sim, net, flow, cc, mtu=1000)
    sim.run(until=100_000_000)
    assert flow.done
    # 10 packets at 1 per ~2 base RTTs of pacing
    assert flow.fct_ns() >= 17 * s.base_rtt


def test_stop_resume():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 1_000_000)
    s = FlowSender(sim, net, flow, Swift())
    sim.after(10_000, s.stop_sending)
    sim.run(until=300_000)
    assert not flow.done
    stalled = s.acked_payload
    sim.run(until=600_000)
    assert s.acked_payload == stalled  # nothing moved while stopped
    s.resume_sending()
    sim.run(until=100_000_000)
    assert flow.done


def test_probe_round_trip():
    sim, net, senders, recv = tiny_star(1)
    # data starts late so the probe echo arrives before completion
    flow = Flow(1, senders[0], recv, 10_000, start_ns=1_000_000)
    received = []

    class ProbingCC(CongestionControl):
        def on_probe_ack(self, info):
            received.append(info)

    cc = ProbingCC(init_cwnd_bytes=10_000)
    s = FlowSender(sim, net, flow, cc)
    s.send_probe_after(0)
    sim.run(until=10_000_000)
    assert len(received) == 1
    info = received[0]
    assert info.is_probe
    # probe delay is normalised to data-packet equivalents
    assert abs(info.delay_ns - s.base_rtt) < s.base_rtt * 0.5
    assert flow.probes_sent == 1


def test_retransmission_recovers_from_loss():
    """Force drops with a tiny lossy buffer; the flow must still complete."""
    sim = Simulator(3)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=5_000, pfc=PfcConfig(enabled=False))
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    f1 = Flow(1, senders[0], recv, 200_000)
    f2 = Flow(2, senders[1], recv, 200_000)
    # NoCC-ish blast to overflow the buffer
    FlowSender(sim, net, f1, CongestionControl(init_cwnd_bytes=100_000), rto_ns=200_000)
    FlowSender(sim, net, f2, CongestionControl(init_cwnd_bytes=100_000), rto_ns=200_000)
    sim.run(until=1_000_000_000)
    assert net.total_drops() > 0
    assert f1.done and f2.done
    assert f1.retransmits + f2.retransmits > 0


def test_every_byte_delivered_exactly_once():
    sim = Simulator(3)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=4_000, pfc=PfcConfig(enabled=False))
    net, senders, recv = star(sim, 1, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    flow = Flow(1, senders[0], recv, 50_000)
    s = FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=50_000), rto_ns=150_000)
    sim.run(until=1_000_000_000)
    assert flow.done
    assert s.receiver.rx_count == s.n_packets
    assert all(s.receiver.received)


def test_rto_rearm_until_done():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000)
    s = FlowSender(sim, net, flow, Swift())
    sim.run(until=100_000_000)
    assert s._rto_ev is None  # disarmed after completion


def test_on_done_callbacks():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000)
    sender_done, recv_done = [], []
    FlowSender(
        sim, net, flow, Swift(), on_done=sender_done.append, on_receive_done=recv_done.append
    )
    sim.run(until=10_000_000)
    assert sender_done == [flow]
    assert recv_done == [flow]
    assert flow.completion_ns <= flow.sender_done_ns


def test_flow_start_time_respected():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000, start_ns=500_000)
    FlowSender(sim, net, flow, Swift())
    sim.run(until=10_000_000)
    assert flow.first_tx_ns >= 500_000


def test_slowdown_and_ideal_fct_helpers():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 100_000)
    FlowSender(sim, net, flow, Swift())
    sim.run(until=100_000_000)
    assert flow.slowdown(10e9) >= 1.0
    assert flow.ideal_fct_ns(10e9, 1000) == pytest.approx(100_000 * 8e9 / 10e9 + 1000)


def test_fct_before_completion_raises():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000)
    with pytest.raises(RuntimeError):
        flow.fct_ns()
