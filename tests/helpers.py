"""Shared test fixtures: fake senders, tiny topologies, quick-run helpers."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import AckInfo, Flow
from repro.transport.sender import FlowSender


class FakeSim:
    """Minimal stand-in for Simulator in CC unit tests."""

    def __init__(self, seed: int = 0):
        self.now = 0
        self.rng = random.Random(seed)


class FakeSender:
    """Duck-typed FlowSender for exercising CC logic without a network.

    Records stop/resume/probe calls and lets tests advance sequence numbers
    and clock by hand.
    """

    def __init__(
        self,
        mtu: int = 1000,
        base_rtt: int = 12_000,
        line_rate_bps: float = 100e9,
    ):
        self.sim = FakeSim()
        self.mtu = mtu
        self.base_rtt = base_rtt
        self.line_rate_bps = line_rate_bps
        self.bdp_bytes = line_rate_bps * base_rtt / 8e9
        self.last_rtt = base_rtt
        self.stopped = False
        self.next_new_seq = 0
        self.stop_calls = 0
        self.resume_calls = 0
        self.probe_delays: List[int] = []

    @property
    def snd_nxt(self) -> int:
        return self.next_new_seq

    def stop_sending(self) -> None:
        self.stopped = True
        self.stop_calls += 1

    def resume_sending(self) -> None:
        self.stopped = False
        self.resume_calls += 1

    def send_probe_after(self, delay_ns: int) -> None:
        self.probe_delays.append(delay_ns)

    # test conveniences -------------------------------------------------
    def ack(self, delay_ns: int, seq: Optional[int] = None, acked: int = 1000) -> AckInfo:
        if seq is None:
            seq = self.next_new_seq
            self.next_new_seq += 1
        self.sim.now += self.base_rtt
        self.last_rtt = delay_ns
        return AckInfo(self.sim.now, delay_ns, False, acked, seq)


def tiny_star(n_senders: int = 2, rate_bps: float = 10e9, seed: int = 1, n_queues: int = 4):
    """A small star network plus simulator, for integration tests."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=n_queues, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n_senders, rate_bps=rate_bps, link_delay_ns=1000, switch_cfg=cfg)
    return sim, net, senders, recv


def run_flow(sim, net, flow: Flow, cc, until: int = 200_000_000, **kwargs) -> FlowSender:
    sender = FlowSender(sim, net, flow, cc, **kwargs)
    sim.run(until=until)
    return sender
