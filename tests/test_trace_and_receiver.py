"""Telemetry-tracer tests and receiver edge cases (reordering, duplicates)."""

import pytest

from repro.analysis import PfcLogger, PortTracer, occupancy_stats
from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, PROBE, PROBE_ACK, Packet
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.receiver import FlowReceiver
from repro.transport.sender import FlowSender


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_port_tracer_sees_queue_buildup():
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    bottleneck = net.path_ports(senders[0], recv)[-1]
    tracer = PortTracer(sim, bottleneck, interval_ns=5_000)
    for i in range(2):
        f = Flow(i + 1, senders[i], recv, 300_000)
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=300_000))
    sim.run(until=2_000_000)
    assert tracer.peak_bytes() > 0
    assert tracer.mean_bytes() <= tracer.peak_bytes()
    series = tracer.occupancy_series(queue=0)
    assert len(series) > 10
    stats = occupancy_stats(tracer, bdp_bytes=10e9 * 6_000 / 8e9)
    assert stats["peak_bdp"] > 0
    with pytest.raises(ValueError):
        occupancy_stats(tracer, 0)


def test_port_tracer_validates_interval():
    sim = Simulator()
    net, senders, recv = star(sim, 1, switch_cfg=SwitchConfig(n_queues=2))
    with pytest.raises(ValueError):
        PortTracer(sim, senders[0].port, interval_ns=0)


def test_pfc_logger_counts_and_duration():
    sim = Simulator(3)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=64_000,
        headroom_per_port_per_prio=8_000,
        pfc=PfcConfig(enabled=True, xoff_bytes=4_000, dynamic=False),
    )
    net, senders, recv = star(sim, 2, rate_bps=100e9, link_delay_ns=100, switch_cfg=cfg)
    # install BEFORE traffic
    logger = PfcLogger(sim, net.switches[0])
    # slow the switch's egress toward the receiver to force sustained pause
    net.path_ports(senders[0], recv)[-1].ns_per_byte = 8.0  # ~1 Gbps
    f = Flow(1, senders[0], recv, 100_000)
    FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=100_000))
    sim.run(until=2_000_000_000)
    assert f.done
    assert logger.pause_count() >= 1
    assert logger.resume_count() >= 1
    assert logger.pause_count() >= logger.resume_count()
    assert logger.paused_duration_ns(sim.now) > 0


# ----------------------------------------------------------------------
# receiver edge cases
# ----------------------------------------------------------------------
class _CollectHost:
    """Stub host capturing emitted ACKs."""

    node_id = 42

    def __init__(self):
        self.sent = []
        self.port = None

    def send(self, pkt):
        self.sent.append(pkt)

    def local_ack_queue(self):
        return 17


def _data(seq, flow_id=1, ts=100):
    return Packet(DATA, 1040, src=7, dst=42, flow_id=flow_id, seq=seq, payload=1000, send_ts=ts)


def test_receiver_out_of_order_delivery():
    sim = Simulator()
    host = _CollectHost()
    flow = Flow(1, None, host, 3000)
    rx = FlowReceiver(sim, flow, n_packets=3, ack_priority=1)
    rx.on_packet(_data(2))
    assert rx.cum_seq == 0  # hole at 0
    rx.on_packet(_data(0))
    assert rx.cum_seq == 1
    rx.on_packet(_data(1))
    assert rx.cum_seq == 3
    assert flow.done
    # ACK per packet, each carrying the cumulative sequence at that moment
    assert [a.ack_seq for a in host.sent] == [0, 1, 3]


def test_receiver_duplicate_data_not_double_counted():
    sim = Simulator()
    host = _CollectHost()
    flow = Flow(1, None, host, 2000)
    rx = FlowReceiver(sim, flow, n_packets=2, ack_priority=1)
    rx.on_packet(_data(0))
    rx.on_packet(_data(0))  # duplicate (retransmission)
    assert rx.rx_count == 1
    assert not flow.done
    rx.on_packet(_data(1))
    assert flow.done
    # duplicates are still ACKed (the sender needs the signal)
    assert len(host.sent) == 3


def test_receiver_completion_time_set_once():
    sim = Simulator()
    host = _CollectHost()
    flow = Flow(1, None, host, 1000)
    rx = FlowReceiver(sim, flow, n_packets=1, ack_priority=1)
    sim.now = 555
    rx.on_packet(_data(0))
    first = flow.completion_ns
    sim.now = 999
    rx.on_packet(_data(0))
    assert flow.completion_ns == first == 555


def test_receiver_probe_echo():
    sim = Simulator()
    host = _CollectHost()
    flow = Flow(1, None, host, 1000)
    rx = FlowReceiver(sim, flow, n_packets=1, ack_priority=1)
    probe = Packet(PROBE, 64, src=7, dst=42, flow_id=1, send_ts=123)
    rx.on_packet(probe)
    (echo,) = host.sent
    assert echo.kind == PROBE_ACK
    assert echo.echo_ts == 123
    assert echo.dst == 7


def test_receiver_echo_carries_ecn_and_int():
    sim = Simulator()
    host = _CollectHost()
    flow = Flow(1, None, host, 1000)
    rx = FlowReceiver(sim, flow, n_packets=1, ack_priority=1)
    pkt = _data(0)
    pkt.ecn = True
    pkt.int_hops = ["hop"]
    rx.on_packet(pkt)
    (ack,) = host.sent
    assert ack.kind == ACK
    assert ack.ecn_echo
    assert ack.int_hops == ["hop"]
