"""Cross-module property-based tests on simulator invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.base import CongestionControl
from repro.cc.swift import Swift, SwiftParams
from repro.sim.engine import Simulator
from repro.sim.packet import DATA, Packet
from repro.sim.pfc import PfcConfig
from repro.sim.port import Port
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


class _Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt, in_idx):
        self.received.append(pkt)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(64, 1500)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_port_conserves_packets_and_orders_within_priority(items):
    """Every enqueued packet is delivered exactly once; FIFO per priority."""
    sim = Simulator()
    port = Port(sim, 8e9, n_queues=4)
    sink = _Sink()
    port.connect(sink, 100)
    for i, (prio, size) in enumerate(items):
        port.enqueue(Packet(DATA, size, 0, 1, flow_id=1, seq=i, priority=prio))
    sim.run()
    assert len(sink.received) == len(items)
    assert sorted(p.seq for p in sink.received) == list(range(len(items)))
    for prio in range(4):
        seqs = [p.seq for p in sink.received if p.priority == prio]
        assert seqs == sorted(seqs)


@given(st.integers(1, 6), st.integers(1, 200), st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_property_flows_always_complete_and_deliver_every_byte(n_flows, kb, seed):
    """Random flow counts/sizes on a shared bottleneck: reliable delivery."""
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=4 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flows, snds = [], []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, kb * 1000 + i)
        s = FlowSender(sim, net, f, Swift(SwiftParams(target_scaling=False)))
        flows.append(f)
        snds.append(s)
    sim.run(until=2_000_000_000)
    for f, s in zip(flows, snds):
        assert f.done
        assert s.acked_payload == f.size_bytes
        assert s.receiver.rx_count == s.n_packets
        assert f.fct_ns() >= f.size_bytes * 8e9 / 10e9  # can't beat line rate


@given(st.integers(2, 8), st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_property_pfc_keeps_fabric_lossless(n_flows, seed):
    """With PFC on and headroom sized, a blast never drops packets."""
    sim = Simulator(seed)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=256 * 1024,
        headroom_per_port_per_prio=16 * 1024,
        pfc=PfcConfig(enabled=True, xoff_bytes=8 * 1024, dynamic=False),
    )
    net, senders, recv = star(sim, n_flows, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flows = []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, 60_000)
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=60_000))
        flows.append(f)
    sim.run(until=2_000_000_000)
    assert net.total_drops() == 0
    assert all(f.done for f in flows)


@given(st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_property_same_seed_same_result(seed):
    """Bit-for-bit reproducibility of a small contention scenario."""

    def run_once():
        sim = Simulator(seed)
        cfg = SwitchConfig(n_queues=2, buffer_bytes=4 * 1024 * 1024)
        net, senders, recv = star(sim, 3, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
        flows = []
        for i in range(3):
            f = Flow(i + 1, senders[i], recv, 150_000, start_ns=i * 10_000)
            FlowSender(sim, net, f, Swift())
            flows.append(f)
        sim.run(until=1_000_000_000)
        return [f.completion_ns for f in flows]

    assert run_once() == run_once()
