"""End-to-end PrioPlus behaviour on real simulated networks."""


from repro.cc.ledbat import Ledbat
from repro.cc.swift import Swift, SwiftParams
from repro.core import ChannelConfig, PrioPlusCC, StartTier
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender


def _prioplus(channels, vprio, tier=StartTier.MEDIUM, inner=None, **kw):
    inner = inner or Swift(SwiftParams(target_scaling=False))
    return PrioPlusCC(inner, channels, vpriority=vprio, tier=tier, **kw)


def _net(n, rate=10e9, seed=1):
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    return (sim,) + star(sim, n, rate_bps=rate, link_delay_ns=1000, switch_cfg=cfg)


def test_high_priority_preempts_low():
    sim, net, senders, recv = _net(2)
    ch = ChannelConfig(n_priorities=8)
    rate = 10e9
    low = Flow(1, senders[0], recv, 2_000_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], recv, 500_000, vpriority=5, start_ns=200_000)
    FlowSender(sim, net, low, _prioplus(ch, 1, StartTier.LOW))
    s_hi = FlowSender(sim, net, high, _prioplus(ch, 5, StartTier.HIGH))
    sim.run(until=100_000_000)
    assert high.done and low.done
    ideal_high = high.size_bytes * 8e9 / rate + s_hi.base_rtt
    # strict priority: the high flow runs at ~line rate despite the low flow
    assert high.fct_ns() < 1.3 * ideal_high
    # the low flow yielded: its FCT covers its own bytes + the high flow's
    combined_ideal = (low.size_bytes + high.size_bytes) * 8e9 / rate
    assert low.fct_ns() > combined_ideal * 0.95


def test_work_conservation_after_preemption():
    """Total completion of both flows stays close to back-to-back ideal."""
    sim, net, senders, recv = _net(2)
    ch = ChannelConfig(n_priorities=8)
    low = Flow(1, senders[0], recv, 2_000_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], recv, 500_000, vpriority=5, start_ns=200_000)
    FlowSender(sim, net, low, _prioplus(ch, 1, StartTier.LOW))
    FlowSender(sim, net, high, _prioplus(ch, 5, StartTier.HIGH))
    sim.run(until=100_000_000)
    total_ideal = (low.size_bytes + high.size_bytes) * 8e9 / 10e9
    assert low.completion_ns < total_ideal * 1.45  # O2: limited waste


def test_three_priority_ordering():
    sim, net, senders, recv = _net(3)
    ch = ChannelConfig(n_priorities=8)
    flows = []
    for i, vp in enumerate((2, 4, 6)):
        f = Flow(i + 1, senders[i], recv, 800_000, vpriority=vp, start_ns=0)
        tier = StartTier.HIGH if vp == 6 else StartTier.MEDIUM
        FlowSender(sim, net, f, _prioplus(ch, vp, tier, probe_first=False))
        flows.append(f)
    sim.run(until=100_000_000)
    assert all(f.done for f in flows)
    # completion order follows priority: 6 before 4 before 2
    assert flows[2].completion_ns < flows[1].completion_ns < flows[0].completion_ns


def test_same_priority_flows_share():
    sim, net, senders, recv = _net(2)
    ch = ChannelConfig(n_priorities=8)
    f1 = Flow(1, senders[0], recv, 1_000_000, vpriority=3, start_ns=0)
    f2 = Flow(2, senders[1], recv, 1_000_000, vpriority=3, start_ns=0)
    FlowSender(sim, net, f1, _prioplus(ch, 3, probe_first=False))
    FlowSender(sim, net, f2, _prioplus(ch, 3, probe_first=False))
    sim.run(until=100_000_000)
    assert f1.done and f2.done
    # neither starves: completions within 40% of each other
    assert abs(f1.fct_ns() - f2.fct_ns()) < 0.4 * max(f1.fct_ns(), f2.fct_ns())


def test_stopped_flow_sends_only_probes():
    sim, net, senders, recv = _net(2)
    ch = ChannelConfig(n_priorities=8)
    low = Flow(1, senders[0], recv, 3_000_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], recv, 3_000_000, vpriority=6, start_ns=100_000)
    s_lo = FlowSender(sim, net, low, _prioplus(ch, 1, StartTier.LOW))
    FlowSender(sim, net, high, _prioplus(ch, 6, StartTier.HIGH))
    # sample the low flow's progress while the high flow dominates
    sim.run(until=800_000)
    assert s_lo.cc.relinquish_count >= 1
    mid_acked = s_lo.acked_payload
    sim.run(until=1_600_000)
    moved = s_lo.acked_payload - mid_acked
    # during domination the low flow makes (almost) no data progress
    assert moved < 0.2 * low.size_bytes
    assert low.probes_sent > 0
    sim.run(until=200_000_000)
    assert low.done and high.done


def test_prioplus_with_ledbat_inner():
    sim, net, senders, recv = _net(2)
    ch = ChannelConfig(n_priorities=8)
    low = Flow(1, senders[0], recv, 1_500_000, vpriority=1, start_ns=0)
    high = Flow(2, senders[1], recv, 400_000, vpriority=5, start_ns=150_000)
    FlowSender(sim, net, low, _prioplus(ch, 1, StartTier.LOW, inner=Ledbat()))
    s_hi = FlowSender(sim, net, high, _prioplus(ch, 5, StartTier.HIGH, inner=Ledbat()))
    sim.run(until=100_000_000)
    assert low.done and high.done
    ideal_high = high.size_bytes * 8e9 / 10e9 + s_hi.base_rtt
    assert high.fct_ns() < 1.4 * ideal_high


def test_incast_cardinality_controls_delay():
    sim, net, senders, recv = _net(30, rate=25e9, seed=2)
    ch = ChannelConfig(n_priorities=4)
    flows, snds = [], []
    for i in range(30):
        f = Flow(i + 1, senders[i], recv, 200_000, vpriority=3, start_ns=0)
        s = FlowSender(sim, net, f, _prioplus(ch, 3, probe_first=False))
        flows.append(f)
        snds.append(s)
    sim.run(until=500_000_000)
    assert all(f.done for f in flows)
    assert net.total_drops() == 0
    # at least one flow saw the crowd and estimated a large cardinality
    assert max(s.cc.nflow for s in snds) > 3


def test_noise_filter_prevents_spurious_relinquish():
    """With one-sample filtering disabled vs. enabled under noise."""
    from repro.noise import LognormalNoise

    def run(filter_consecutive):
        sim, net, senders, recv = _net(1, seed=4)
        ch = ChannelConfig(fluctuation_ns=800, noise_ns=200, n_priorities=4)
        f = Flow(1, senders[0], recv, 1_000_000, vpriority=1, start_ns=0)
        cc = _prioplus(ch, 1, probe_first=False, filter_consecutive=filter_consecutive)
        # heavy noise relative to the narrow channel margin
        FlowSender(sim, net, f, cc, noise=LognormalNoise(median_ns=400, sigma=0.5))
        sim.run(until=500_000_000)
        assert f.done
        return cc.relinquish_count

    assert run(2) <= run(1)


def test_weighted_vs_strict_priority_tradeoff_end_to_end():
    """Larger weights help the preempted flow, cost the preemptor a little."""
    from repro.core import WeightedPrioPlusCC

    def run(weight):
        sim, net, senders, recv = _net(2, seed=6)
        ch = ChannelConfig(n_priorities=8)
        lo = Flow(1, senders[0], recv, 2_000_000, vpriority=1, start_ns=0)
        hi = Flow(2, senders[1], recv, 1_000_000, vpriority=5, start_ns=150_000)
        FlowSender(sim, net, lo, WeightedPrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), ch, 1, weight=weight,
            tier=StartTier.LOW))
        FlowSender(sim, net, hi, WeightedPrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), ch, 5, weight=weight,
            tier=StartTier.HIGH))
        sim.run(until=200_000_000)
        return hi.fct_ns(), lo.fct_ns()

    hi_strict, lo_strict = run(0.0)
    hi_weighted, lo_weighted = run(0.3)
    assert lo_weighted < lo_strict  # the residual share helps the low flow
    assert hi_weighted < hi_strict * 1.5  # without wrecking the high flow


def test_prioplus_under_heavy_noise_still_completes():
    from repro.noise import LognormalNoise

    sim, net, senders, recv = _net(3, seed=8)
    ch = ChannelConfig(fluctuation_ns=6000, noise_ns=3000, n_priorities=4)
    flows = []
    for i, vp in enumerate((1, 2, 3)):
        f = Flow(i + 1, senders[i], recv, 600_000, vpriority=vp, start_ns=0)
        FlowSender(sim, net, f,
                   _prioplus(ch, vp, StartTier.MEDIUM, probe_first=False),
                   noise=LognormalNoise(median_ns=1500, sigma=0.6))
        flows.append(f)
    sim.run(until=500_000_000)
    assert all(f.done for f in flows)
