"""The parallel experiment runner: determinism, caching, crash retry.

The hard guarantees under test:

* ``run_experiment(exp, jobs=N)`` is byte-identical to ``jobs=1`` for any N;
* a warm cache satisfies every point without running the simulator at all
  (proved via the ``sim.events`` telemetry counter);
* the cache key tracks the point's canonical config/seed and nothing else;
* a crashed worker process is retried, a deterministic failure is not.
"""

import json
import os

import pytest

from repro.experiments.common import (
    REGISTRY,
    Experiment,
    FunctionExperiment,
    Point,
    get_experiment,
)
from repro.experiments.fig8_testbed import run_staircase
from repro.experiments.fig10_micro import _run_fig10c
from repro.experiments.quickstart import run_quickstart
from repro.runner import ResultCache, RunnerError, cache_key, json_safe, run_experiment
from repro.telemetry import Recorder, set_default_recorder


# ----------------------------------------------------------------------
# small experiments (module-level: worker processes pickle by reference)
# ----------------------------------------------------------------------
SMALL_FIG10C = FunctionExperiment(
    "small-fig10c",
    {
        "dual_rtt": (
            _run_fig10c,
            {"dual_rtt": True, "n_each": 2, "rate": 10e9, "duration_ns": 1_200_000,
             "hi_start_ns": 200_000, "seed": 1},
        ),
        "every_rtt": (
            _run_fig10c,
            {"dual_rtt": False, "n_each": 2, "rate": 10e9, "duration_ns": 1_200_000,
             "hi_start_ns": 200_000, "seed": 1},
        ),
    },
)

SMALL_FIG8 = FunctionExperiment(
    "small-fig8",
    {
        "prioplus": (
            run_staircase,
            {"mode": "prioplus", "priorities": (1, 2), "rate": 10e9,
             "stagger_ns": 300_000, "flows_per_prio": 2, "seed": 1},
        ),
        "swift_targets": (
            run_staircase,
            {"mode": "swift_targets", "priorities": (1, 2), "rate": 10e9,
             "stagger_ns": 300_000, "flows_per_prio": 2, "seed": 1},
        ),
    },
)


def _echo(x=0, seed=0):
    return {"x": x, "pair": (x, x + 1)}


def _crash_once(marker="", seed=0):
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("crashed")
        os._exit(42)  # simulate a segfault/OOM-kill: no exception, no cleanup
    return {"ok": True}


def _always_crash(seed=0):
    os._exit(42)


def _raise(seed=0):
    raise ValueError("deterministic failure")


# ----------------------------------------------------------------------
# determinism: sharded == serial, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exp", [SMALL_FIG10C, SMALL_FIG8], ids=lambda e: e.name)
def test_parallel_identical_to_serial(exp):
    serial = run_experiment(exp, jobs=1)
    parallel = run_experiment(exp, jobs=4)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)


def test_results_ordered_by_points_not_completion():
    # the reduced mapping must follow points() order even though the slower
    # first point finishes after the second under parallel execution
    out = run_experiment(SMALL_FIG10C, jobs=2)
    assert list(out) == ["dual_rtt", "every_rtt"]


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
def test_cache_hit_skips_simulation(tmp_path):
    exp = SMALL_FIG10C
    cache = tmp_path / "cache"

    rec_cold = Recorder(events=False)
    set_default_recorder(rec_cold)
    try:
        cold = run_experiment(exp, cache=str(cache))
    finally:
        set_default_recorder(None)
    counters = rec_cold.snapshot()["metrics"]["counters"]
    assert counters["runner.points"] == 2
    assert counters["runner.cache_misses"] == 2
    assert counters["runner.points_executed"] == 2
    assert counters["sim.events"] > 0

    rec_warm = Recorder(events=False)
    set_default_recorder(rec_warm)
    try:
        warm = run_experiment(exp, cache=str(cache))
    finally:
        set_default_recorder(None)
    counters = rec_warm.snapshot()["metrics"]["counters"]
    assert counters["runner.cache_hits"] == 2
    assert counters["sim.events"] == 0  # no simulator ran at all
    assert counters.get("runner.points_executed", 0) == 0
    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)


def test_cache_hits_reported_and_results_equal_across_jobs(tmp_path):
    cache = str(tmp_path / "cache")
    report = {}
    first = run_experiment(SMALL_FIG8, jobs=2, cache=cache, report=report)
    assert report["executed"] == 2 and report["cache_hits"] == 0

    report = {}
    second = run_experiment(SMALL_FIG8, jobs=4, cache=cache, report=report)
    assert report["executed"] == 0 and report["cache_hits"] == 2
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_cache_invalidates_on_config_change(tmp_path):
    cache = str(tmp_path / "cache")

    def exp_with(x):
        return FunctionExperiment("echo", {"p": (_echo, {"x": x, "seed": 0})})

    report = {}
    run_experiment(exp_with(1), cache=cache, report=report)
    assert report["executed"] == 1

    report = {}
    assert run_experiment(exp_with(1), cache=cache, report=report) == {"x": 1, "pair": [1, 2]}
    assert report["cache_hits"] == 1

    report = {}
    assert run_experiment(exp_with(2), cache=cache, report=report) == {"x": 2, "pair": [2, 3]}
    assert report["cache_hits"] == 0 and report["executed"] == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    exp = FunctionExperiment("echo", {"p": (_echo, {"x": 3, "seed": 0})})
    run_experiment(exp, cache=cache)
    (entry,) = list((tmp_path / "cache" / "echo").glob("*.json"))
    entry.write_text("{truncated", encoding="utf-8")
    report = {}
    assert run_experiment(exp, cache=cache, report=report) == {"x": 3, "pair": [3, 4]}
    assert report["executed"] == 1  # re-ran instead of crashing on bad JSON


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def test_cache_key_canonicalization():
    a = Point("p", {"a": 1, "b": (1, 2)}, seed=1)
    b = Point("p", {"b": [1, 2], "a": 1}, seed=1)  # order + tuple/list irrelevant
    assert cache_key("e", a) == cache_key("e", b)

    assert cache_key("e", Point("p", {"a": 1}, seed=1)) != cache_key(
        "e", Point("p", {"a": 2}, seed=1)
    )
    assert cache_key("e", Point("p", {"a": 1}, seed=1)) != cache_key(
        "e", Point("p", {"a": 1}, seed=2)
    )
    assert cache_key("e", Point("p", {}, 0)) != cache_key("other", Point("p", {}, 0))
    assert cache_key("e", Point("p", {}, 0)) != cache_key("e", Point("p", {}, 0), version="0.0.0")


def test_duplicate_cache_keys_rejected():
    exp = FunctionExperiment(
        "dup", {"a": (_echo, {"x": 1, "seed": 0}), "b": (_echo, {"x": 1, "seed": 0})}
    )
    with pytest.raises(RunnerError, match="share a cache key"):
        run_experiment(exp)


def test_json_safe_round_trip():
    assert json_safe({1: (2, 3), "k": {"n": None}}) == {"1": [2, 3], "k": {"n": None}}


# ----------------------------------------------------------------------
# crash retry
# ----------------------------------------------------------------------
def test_worker_crash_retried(tmp_path):
    marker = str(tmp_path / "crashed_once")
    exp = FunctionExperiment("crashy", {"p": (_crash_once, {"marker": marker, "seed": 0})})
    rec = Recorder(events=False)
    set_default_recorder(rec)
    try:
        result = run_experiment(exp, jobs=2, retry_backoff_s=0.01)
    finally:
        set_default_recorder(None)
    assert result == {"ok": True}
    assert os.path.exists(marker)
    assert rec.snapshot()["metrics"]["counters"]["runner.worker_crashes"] == 1


def test_worker_crash_retry_exhausted():
    exp = FunctionExperiment("doomed", {"p": (_always_crash, {"seed": 0})})
    with pytest.raises(RunnerError, match="crashed"):
        run_experiment(exp, jobs=2, max_retries=1, retry_backoff_s=0.01)


def test_deterministic_exception_fails_fast():
    exp = FunctionExperiment("raiser", {"p": (_raise, {"seed": 0})})
    with pytest.raises(RunnerError, match="ValueError"):
        run_experiment(exp, jobs=2, retry_backoff_s=0.01)
    with pytest.raises(RunnerError, match="ValueError"):
        run_experiment(exp, jobs=1)


# ----------------------------------------------------------------------
# registry + protocol
# ----------------------------------------------------------------------
def test_registry_names_and_lookup():
    names = REGISTRY.names()
    for expected in ("quickstart", "fig8", "fig10c", "fig12", "table2", "ablations"):
        assert expected in names
    exp = get_experiment("fig10c")
    assert [p.name for p in exp.points()] == ["dual_rtt", "every_rtt"]
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("nope")


def test_registered_experiments_have_unique_point_identities():
    for exp in REGISTRY.experiments():
        points = exp.points()
        names = [p.name for p in points]
        assert len(set(names)) == len(names), exp.name
        keys = {cache_key(exp.name, p) for p in points}
        assert len(keys) == len(points), f"{exp.name}: cache-key collision"


def test_runner_matches_legacy_function():
    via_runner = run_experiment(get_experiment("quickstart"))
    legacy = run_quickstart()
    legacy.pop("telemetry", None)
    assert via_runner == json.loads(json.dumps(json_safe(legacy)))


def test_duplicate_point_names_rejected():
    class Dup(Experiment):
        name = "dup-names"

        def points(self):
            return [Point("p", {"a": 1}, 0), Point("p", {"a": 2}, 0)]

        def run_point(self, point):  # pragma: no cover - never reached
            return {}

    with pytest.raises(RunnerError, match="duplicate point names"):
        run_experiment(Dup())


# ----------------------------------------------------------------------
# progress reporting: never let a broken terminal kill a run
# ----------------------------------------------------------------------
def test_progress_printer_survives_closed_stderr(monkeypatch):
    import io
    import sys

    exp = FunctionExperiment(
        "echo-progress", {"a": (_echo, {"x": 1, "seed": 0}), "b": (_echo, {"x": 2, "seed": 1})}
    )
    broken = io.StringIO()
    broken.close()  # every write now raises ValueError, like a torn-down TTY
    monkeypatch.setattr(sys, "stderr", broken)
    result = run_experiment(exp, progress=True)
    assert result["a"]["x"] == 1 and result["b"]["x"] == 2


def test_progress_printer_survives_stderr_vanishing_mid_run(monkeypatch):
    import sys

    class _Flaky:
        def __init__(self):
            self.calls = 0

        def write(self, *_):
            self.calls += 1
            raise OSError("gone")

        def flush(self):
            raise OSError("gone")

    flaky = _Flaky()
    monkeypatch.setattr(sys, "stderr", flaky)
    exp = FunctionExperiment(
        "echo-progress2", {"a": (_echo, {"x": 1, "seed": 0}), "b": (_echo, {"x": 2, "seed": 1})}
    )
    result = run_experiment(exp, progress=True)
    assert result["a"]["x"] == 1
    # after the first failed write the printer goes quiet instead of retrying
    assert flaky.calls <= 2


def test_progress_callback_receives_sources(tmp_path):
    exp = FunctionExperiment(
        "echo-progress3", {"a": (_echo, {"x": 1, "seed": 0}), "b": (_echo, {"x": 2, "seed": 1})}
    )
    seen = []
    run_experiment(exp, cache=tmp_path / "c", progress=lambda p, s: seen.append((p, s)))
    assert sorted(seen) == [("a", "run"), ("b", "run")]
    seen.clear()
    run_experiment(exp, cache=tmp_path / "c", progress=lambda p, s: seen.append((p, s)))
    assert sorted(seen) == [("a", "cache"), ("b", "cache")]
