"""Edge-case coverage: packets, flow records, host dispatch."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import ACK, DATA, HEADER_BYTES, MIN_PACKET_BYTES, IntHop, Packet
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import AckInfo, Flow


def test_packet_defaults():
    p = Packet(DATA, 1040, src=1, dst=2, flow_id=9, seq=3, priority=2, payload=1000, send_ts=50)
    assert p.kind == DATA
    assert not p.ecn and not p.ecn_echo
    assert p.int_hops is None
    assert p.local_prio == -1
    assert not p.is_control
    ack = Packet(ACK, MIN_PACKET_BYTES, src=2, dst=1, flow_id=9)
    assert ack.is_control
    assert "DATA" in repr(p)


def test_int_hop_fields():
    hop = IntHop(qlen=100, tx_bytes=5000, ts=42, rate_bps=1e9)
    assert (hop.qlen, hop.tx_bytes, hop.ts, hop.rate_bps) == (100, 5000, 42, 1e9)


def test_header_constants():
    assert HEADER_BYTES == 40
    assert MIN_PACKET_BYTES == 64


def test_flow_record_fields():
    f = Flow(5, None, None, 1234, priority=3, vpriority=2, start_ns=10, tag="t")
    assert not f.done
    assert f.tag == "t"
    f.completion_ns = 110
    assert f.fct_ns() == 100
    assert "Flow 5" in repr(f)


def test_ack_info_fields():
    info = AckInfo(now=10, delay_ns=20, ecn=True, acked_bytes=1000, seq=7,
                   int_hops=["h"], is_probe=False, cum_seq=4)
    assert info.cum_seq == 4
    assert info.int_hops == ["h"]


def test_host_unconnected_errors():
    sim = Simulator()
    host = Host(sim, 0)
    with pytest.raises(RuntimeError):
        host.send(Packet(DATA, 100, 0, 1, 1))
    with pytest.raises(RuntimeError):
        host.link_rate_bps
    with pytest.raises(RuntimeError):
        host.local_data_queue(1)
    with pytest.raises(RuntimeError):
        host.local_ack_queue()


def test_host_double_attach_rejected():
    sim = Simulator()
    host = Host(sim, 0)
    host.attach_port(10e9)
    with pytest.raises(RuntimeError):
        host.attach_port(10e9)


def test_host_drops_packets_for_unknown_flows():
    """Stale packets for finished/unknown flows must not crash dispatch."""
    sim = Simulator()
    net, senders, recv = star(sim, 1, switch_cfg=SwitchConfig(n_queues=2))
    pkt = Packet(DATA, 100, src=senders[0].node_id, dst=recv.node_id, flow_id=404)
    recv.receive(pkt)
    assert recv.rx_packets == 1  # counted, silently ignored


def test_host_rx_accounting():
    sim = Simulator()
    net, senders, recv = star(sim, 1, rate_bps=10e9, switch_cfg=SwitchConfig(n_queues=2))
    senders[0].send(Packet(DATA, 500, src=senders[0].node_id, dst=recv.node_id, flow_id=1))
    sim.run()
    assert recv.rx_bytes == 500
    assert recv.rx_packets == 1


def test_unknown_packet_kind_raises():
    sim = Simulator()
    net, senders, recv = star(sim, 1, switch_cfg=SwitchConfig(n_queues=2))
    bad = Packet(99, 100, src=0, dst=recv.node_id, flow_id=1)
    with pytest.raises(RuntimeError):
        recv.receive(bad)
