"""Transport robustness: reordering, duplicates, adversarial ACK patterns."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.base import CongestionControl
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, MIN_PACKET_BYTES, Packet
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

from tests.helpers import tiny_star


def _ack_for(sender, seq, cum, now):
    pkt = Packet(ACK, MIN_PACKET_BYTES, src=sender.flow.dst.node_id,
                 dst=sender.flow.src.node_id, flow_id=sender.flow.flow_id, seq=seq)
    pkt.echo_ts = max(0, now - sender.base_rtt)
    pkt.ack_seq = cum
    return pkt


def test_sender_ignores_duplicate_acks_for_window():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 10_000)
    s = FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=2_000))
    sim.run(until=2_000)  # a couple of packets out, no real ACKs yet
    assert s.next_new_seq >= 1
    # deliver the same ACK thrice: the window is only credited once (each
    # delivery may let the sender transmit, but acked state moves once)
    for _ in range(3):
        s.on_packet(_ack_for(s, 0, 1, sim.now))
    assert s.acked_count == 1
    assert s.acked_payload == s.payload_of(0)
    assert s.inflight_bytes <= 2_000


def test_three_dup_cum_acks_trigger_fast_retransmit():
    sim, net, senders, recv = tiny_star(1)
    flow = Flow(1, senders[0], recv, 20_000)
    s = FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=20_000), rto_ns=10**9)
    sim.run(until=2_000)  # all handed to the NIC, no real ACKs yet
    assert s.next_new_seq == s.n_packets
    base_retx = flow.retransmits
    # pretend packet 0 was lost: ACKs for 1..3 carry cum=0; the third
    # duplicate queues the retransmit and try_send fires it immediately
    for seq in (1, 2, 3):
        s.on_packet(_ack_for(s, seq, 0, sim.now))
    assert flow.retransmits == base_retx + 1
    sim.run(until=10**9)
    assert flow.done


@given(st.integers(0, 2**31), st.integers(2, 30))
@settings(max_examples=15, deadline=None)
def test_property_random_ack_reordering_still_completes(seed, n_packets):
    """Shuffle ACK delivery order at the receiver link: flow still completes.

    Reordering is induced by randomising the per-packet propagation of the
    ACK path via a shim on the receiver's egress port.
    """
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 1, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    rng = random.Random(seed)

    flow = Flow(1, senders[0], recv, n_packets * 1000)
    s = FlowSender(sim, net, flow, CongestionControl(init_cwnd_bytes=8_000), rto_ns=400_000)

    # jitter the ACK propagation: re-randomise the reverse path's delay on a
    # fine grid so consecutive ACKs can leapfrog each other
    ack_port = recv.port

    def rejitter():
        ack_port.prop_delay_ns = 1000 + rng.randrange(0, 15_000)
        if not flow.done:
            sim.after(700, rejitter)

    sim.after(0, rejitter)
    sim.run(until=2_000_000_000)
    assert flow.done
    assert s.acked_payload == flow.size_bytes
