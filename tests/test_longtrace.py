"""Long-trace pipeline tests: staged admission, streaming reduction,
sampler pruning, and hybrid-driver long-run hardening.

These pin the machinery that makes multi-second paper-scale traces
first-class: :class:`repro.experiments.common.FlowAdmitter` (senders
materialized only near their start time, pruned at completion),
``run_flowsched(streaming=True)`` (bounded-memory P² result reduction that
agrees with the historical list path), completed-sender pruning in the
time-series sampler, and the hybrid driver's predicate loop / path-cache
bound / fresh-start handoff.
"""

import pytest

from repro.experiments.common import CCFactory, FlowAdmitter, Mode, run_admitter
from repro.experiments.flowsched import FlowSchedConfig, run_flowsched
from repro.sim.engine import Simulator
from repro.topology import fat_tree
from repro.workloads import FlowSpec


def _small_world(seed: int = 3):
    sim = Simulator(seed)
    factory = CCFactory(Mode.SWIFT)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, link_delay_ns=1000)
    return sim, net, hosts, factory


# ----------------------------------------------------------------------
# FlowAdmitter: staged admission + endpoint pruning
# ----------------------------------------------------------------------
def test_admitter_bounds_live_senders_and_prunes_endpoints():
    sim, net, hosts, factory = _small_world()
    # 40 well-separated small flows: with a tight horizon only a handful of
    # senders may ever exist at once
    specs = [
        FlowSpec(i % 8, 8 + i % 8, 20_000, start_ns=i * 400_000) for i in range(40)
    ]
    admitter = FlowAdmitter(
        sim, net, specs, hosts, factory, group_of=lambda s: 0, horizon_ns=100_000
    )
    done = run_admitter(sim, admitter, hard_deadline_ns=1_000_000_000)
    assert done and admitter.all_done
    assert admitter.n_admitted == admitter.n_done == 40
    # staged admission: never anywhere near all 40 senders alive at once
    assert admitter.live_peak < 10
    assert admitter.live == 0
    # completed endpoints were pruned from the host maps
    assert all(not h.senders and not h.receivers for h in hosts)


def test_admitter_rejects_unsorted_stream():
    sim, net, hosts, factory = _small_world()
    specs = [
        FlowSpec(0, 8, 10_000, start_ns=500_000),
        FlowSpec(1, 9, 10_000, start_ns=400_000),  # goes back in time
    ]
    with pytest.raises(ValueError, match="not sorted"):
        FlowAdmitter(
            sim, net, iter(specs), hosts, factory, group_of=lambda s: 0, horizon_ns=10**9
        )


def test_admitter_on_flow_done_fires_once_per_flow():
    sim, net, hosts, factory = _small_world()
    specs = [FlowSpec(i, 8 + i, 15_000, start_ns=i * 50_000) for i in range(6)]
    seen = []
    admitter = FlowAdmitter(
        sim, net, specs, hosts, factory, group_of=lambda s: 0,
        horizon_ns=25_000, on_flow_done=lambda f: seen.append(f.flow_id),
    )
    assert run_admitter(sim, admitter, 10**9)
    assert sorted(seen) == [1, 2, 3, 4, 5, 6]
    assert len(set(seen)) == 6


# ----------------------------------------------------------------------
# streaming flowsched agrees with the list path
# ----------------------------------------------------------------------
def test_streaming_flowsched_matches_list_path():
    cfg = FlowSchedConfig(rate_bps=10e9, duration_ns=200_000, size_scale=0.01,
                          load=0.4, seed=11)
    r_list = run_flowsched(Mode.PRIOPLUS, 4, cfg)
    r_stream = run_flowsched(Mode.PRIOPLUS, 4, cfg, streaming=True)
    # identical workload, identical completions
    assert r_stream["n_flows"] == r_list["n_flows"] > 0
    assert r_stream["n_done"] == r_list["n_done"]
    assert r_stream["all_done"] == r_list["all_done"]
    assert r_stream["streaming"] is True
    # counts agree per size class and per priority group
    for name in ("all", "small", "middle", "large"):
        assert r_stream["fct"][name]["count"] == r_list["fct"][name]["count"]
    for g in range(4):
        assert r_stream["fct_by_group"][g]["count"] == r_list["fct_by_group"][g]["count"]
    # means agree exactly; percentiles are P² estimates (same population)
    la, sa = r_list["fct"]["all"], r_stream["fct"]["all"]
    assert sa["mean_us"] == pytest.approx(la["mean_us"], rel=1e-9)
    assert sa["p99_us"] == pytest.approx(la["p99_us"], rel=0.25)


def test_flowsched_emits_empty_groups():
    """The empty-group regression: every size class and priority group is
    present with a well-defined n=0 record, never a ZeroDivisionError."""
    # almost no traffic: a couple of flows, 8 fine-grained priority groups —
    # most groups complete zero flows
    cfg = FlowSchedConfig(rate_bps=10e9, duration_ns=20_000, size_scale=0.01,
                          load=0.1, seed=5)
    r = run_flowsched(Mode.SWIFT, 8, cfg)
    if "fct" not in r:  # zero completions entirely: n_done propagated as 0
        assert r["n_done"] == 0
        return
    assert set(r["fct"]) == {"all", "small", "middle", "large"}
    assert set(r["fct_by_group"]) == set(range(8))
    total = 0
    for g, rec in r["fct_by_group"].items():
        assert rec["count"] >= 0
        if rec["count"] == 0:
            assert rec["mean_us"] is None and rec["p99_us"] is None
        total += rec["count"]
    assert total == r["fct"]["all"]["count"] == r["n_done"]
    assert any(rec["count"] == 0 for rec in r["fct_by_group"].values())


# ----------------------------------------------------------------------
# sampler prunes completed senders
# ----------------------------------------------------------------------
def test_sampler_prunes_completed_senders():
    from repro.obs import sample_scope

    with sample_scope(stride_ns=50_000) as smp:
        sim, net, hosts, factory = _small_world()
        specs = [FlowSpec(i, 8 + i, 30_000, start_ns=i * 200_000) for i in range(4)]
        admitter = FlowAdmitter(
            sim, net, specs, hosts, factory, group_of=lambda s: 0, horizon_ns=100_000
        )
        assert run_admitter(sim, admitter, 10**9)
        # drive one more stride so the sampler observes the last completion
        sim.run(until=sim.now + 100_000)
    assert smp.flows_pruned == 4
    assert smp._senders == []
    assert smp._last_acked == {}
    flow_rows = [r for r in smp.rows() if r["kind"] == "flow"]
    for fid in (1, 2, 3, 4):
        done_rows = [r for r in flow_rows if r["flow"] == fid and r["state"] == "done"]
        assert len(done_rows) == 1  # exactly one terminal row per flow
    assert smp.snapshot()["flows_pruned"] == 4


# ----------------------------------------------------------------------
# hybrid driver long-run hardening
# ----------------------------------------------------------------------
def _hybrid_streaming_run(n_flows: int, gap_ns: int, path_cache_max=None):
    pytest.importorskip("numpy")
    from repro.fluid import FluidConfig, HybridDriver
    from repro.fluid import hybrid as hybrid_mod

    sim, net, hosts, factory = _small_world(seed=9)
    # two-flow bursts sharing a destination: each burst is real contention
    # (forces a fluid exit), each inter-burst gap quiesces (re-enters fluid)
    specs = [
        FlowSpec(i % 8, 8 + (i // 2) % 8, 120_000, start_ns=(i // 2) * gap_ns)
        for i in range(n_flows)
    ]
    admitter = FlowAdmitter(
        sim, net, specs, hosts, factory, group_of=lambda s: 0, horizon_ns=50_000
    )
    driver = HybridDriver(
        sim, net, FluidConfig(check_every_ns=50_000, exit_on_contention="any")
    )
    if path_cache_max is not None:
        old = hybrid_mod._PATH_CACHE_MAX
        hybrid_mod._PATH_CACHE_MAX = path_cache_max
        try:
            ok = run_admitter(sim, admitter, 10**10, driver=driver)
        finally:
            hybrid_mod._PATH_CACHE_MAX = old
    else:
        ok = run_admitter(sim, admitter, 10**10, driver=driver)
    return ok, admitter, driver


def test_hybrid_run_until_done_with_streaming_admission():
    """Repeated packet<->fluid regime switches over a staged-admission
    trace: every flow completes, quiescence/drain bookkeeping doesn't
    drift, and flows that start inside fluid epochs are carried."""
    ok, admitter, driver = _hybrid_streaming_run(n_flows=30, gap_ns=400_000)
    assert ok and admitter.all_done
    assert admitter.n_done == 30
    st = driver.stats
    assert st["fluid_epochs"] >= 2  # it kept switching, not a one-shot
    assert st["drain_failures"] == 0
    assert st["admitted_in_fluid"] + st["handoff_fresh_starts"] >= 0
    # fluid epochs carried real work on this workload
    assert st["fluid_ns"] > 0


def test_hybrid_path_cache_bounded():
    ok, admitter, driver = _hybrid_streaming_run(
        n_flows=30, gap_ns=400_000, path_cache_max=8
    )
    assert ok and admitter.n_done == 30
    assert driver.stats["path_cache_evictions"] >= 1
    assert len(driver._path_cache) <= 8


def test_hybrid_fresh_start_handoff_runs_cc_start():
    """A flow admitted during a fluid epoch but handed back to packets
    before moving a byte must go through the real cc.on_start() path."""
    pytest.importorskip("numpy")
    from repro.fluid import FluidConfig, HybridDriver

    sim, net, hosts, factory = _small_world(seed=21)
    # flow 1 starts at t=0 and quiesces the fabric afterwards; flow 2 starts
    # much later, inside a fluid epoch, and immediately contends with flow 3
    # so the driver exits right away
    specs = [
        FlowSpec(0, 8, 60_000, start_ns=0),
        FlowSpec(1, 9, 60_000, start_ns=2_000_000),
        FlowSpec(2, 9, 60_000, start_ns=2_000_000),
    ]
    admitter = FlowAdmitter(
        sim, net, specs, hosts, factory, group_of=lambda s: 0, horizon_ns=10_000
    )
    driver = HybridDriver(
        sim, net, FluidConfig(check_every_ns=50_000, exit_on_contention="any")
    )
    assert run_admitter(sim, admitter, 10**10, driver=driver)
    assert admitter.n_done == 3
    # however the run interleaved, the invariant holds: every sender that
    # reached packet mode without transmitted bytes went through on_start
    # (counted), and nothing stalled
    assert driver.stats["fluid_epochs"] >= 1
    assert driver.stats["drain_failures"] == 0
