"""Hybrid fluid/packet core: solver, laws, gating, parity and agreement."""

import sys

import pytest

from repro.cc import Swift, SwiftParams
from repro.core import ChannelConfig, PrioPlusCC
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import fat_tree, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

np = pytest.importorskip("numpy")

from repro.fluid import FluidConfig, HybridDriver, fluid_available, require_numpy
from repro.fluid.laws import law_for
from repro.fluid.model import classify_contention, solve_rates


# ----------------------------------------------------------------------
# optional-extra plumbing
# ----------------------------------------------------------------------
def test_fluid_available_and_require_numpy():
    assert fluid_available() is True
    assert require_numpy() is np


def test_require_numpy_error_is_actionable(monkeypatch):
    """Without numpy the error must name the extra, not just fail."""
    monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
    assert fluid_available() is False
    with pytest.raises(ImportError, match=r"repro\[fluid\]"):
        require_numpy()


def test_core_package_never_imports_numpy():
    """The stdlib-only core must be importable with numpy blocked."""
    import subprocess

    code = (
        "import sys; sys.modules['numpy'] = None\n"
        "import repro\n"
        "import repro.fluid\n"
        "from repro.sim.engine import Simulator\n"
        "from repro.topology import paper_fabric\n"
        "assert not repro.fluid.fluid_available()\n"
        "print('ok')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert "ok" in out.stdout


# ----------------------------------------------------------------------
# rate solver
# ----------------------------------------------------------------------
def _coo(paths):
    ent_flow, ent_link = [], []
    for i, links in enumerate(paths):
        for l in links:
            ent_flow.append(i)
            ent_link.append(l)
    return np.array(ent_flow, dtype=np.int64), np.array(ent_link, dtype=np.int64)


def test_solver_same_rank_fair_share():
    ef, el = _coo([[0], [0]])
    rate, load = solve_rates(
        np.array([10.0, 10.0]),
        np.array([1, 1], dtype=np.int64),
        ef,
        el,
        np.array([1.0]),
    )
    assert rate == pytest.approx([0.5, 0.5])
    assert load[0] == pytest.approx(1.0)


def test_solver_window_limited_flow_leaves_residual():
    ef, el = _coo([[0], [0]])
    rate, _ = solve_rates(
        np.array([0.2, 10.0]),
        np.array([1, 1], dtype=np.int64),
        ef,
        el,
        np.array([1.0]),
    )
    # the capped flow takes 0.2; the other picks up the slack
    assert rate == pytest.approx([0.2, 0.8])


def test_solver_strict_priority_starves_lower_rank():
    ef, el = _coo([[0], [0]])
    rate, _ = solve_rates(
        np.array([10.0, 10.0]),
        np.array([2, 1], dtype=np.int64),
        ef,
        el,
        np.array([1.0]),
    )
    assert rate == pytest.approx([1.0, 0.0])


def test_solver_multihop_bottleneck():
    # flow 0 crosses links 0-1, flow 1 only link 1 (the bottleneck)
    ef, el = _coo([[0, 1], [1]])
    rate, _ = solve_rates(
        np.array([10.0, 10.0]),
        np.array([1, 1], dtype=np.int64),
        ef,
        el,
        np.array([2.0, 1.0]),
    )
    assert rate == pytest.approx([0.5, 0.5])


def test_contention_classification():
    ranks_same = np.array([1, 1], dtype=np.int64)
    ranks_cross = np.array([2, 1], dtype=np.int64)
    ef, el = _coo([[0], [0]])
    cap = np.array([10.0, 10.0])
    link = np.array([1.0])

    rate, load = solve_rates(cap, ranks_same, ef, el, link)
    assert classify_contention(rate, cap, ranks_same, ef, el, link, load) == "shared"

    rate, load = solve_rates(cap, ranks_cross, ef, el, link)
    assert classify_contention(rate, cap, ranks_cross, ef, el, link, load) == "priority"

    # one cap-limited flow alone on a saturated link: queues cannot build
    cap1 = np.array([1.0])
    r1, l1 = solve_rates(cap1, np.array([1], dtype=np.int64), *_coo([[0]]), link)
    assert classify_contention(r1, cap1, np.array([1], dtype=np.int64), *_coo([[0]]), link, l1) == "single"

    # under-subscribed link
    cap_lo = np.array([0.3, 0.3])
    r, l = solve_rates(cap_lo, ranks_same, ef, el, link)
    assert classify_contention(r, cap_lo, ranks_same, ef, el, link, l) == "none"


# ----------------------------------------------------------------------
# fluid laws
# ----------------------------------------------------------------------
def test_prioplus_fluid_law_matches_scheme_constants():
    from tests.helpers import FakeSender

    sender = FakeSender()
    cc = PrioPlusCC(
        Swift(SwiftParams(target_scaling=False)),
        ChannelConfig(n_priorities=2),
        vpriority=1,
        probe_first=False,
    )
    cc.attach(sender)
    sender.cc = cc
    law = law_for(sender)
    assert law.init == pytest.approx(max(cc.w_ls, cc.min_cwnd))
    assert law.ramp == pytest.approx(max(cc.w_ls / max(cc.nflow, 1.0), 1.0))
    line_bpns = sender.line_rate_bps / 8e9
    assert law.ceil == pytest.approx(max(cc.d_target * line_bpns, sender.bdp_bytes, sender.mtu))


def test_swift_fluid_law_uses_ai_and_target():
    from tests.helpers import FakeSender

    sender = FakeSender()
    cc = Swift(SwiftParams(target_scaling=False))
    cc.attach(sender)
    sender.cc = cc
    law = law_for(sender)
    assert law.ramp == pytest.approx(cc.ai_bytes)
    assert law.ceil >= sender.bdp_bytes


# ----------------------------------------------------------------------
# hybrid driver end-to-end
# ----------------------------------------------------------------------
def _star_world(n_flows, size_bytes, stagger_ns, seed=3):
    sim = Simulator(seed)
    cfg = SwitchConfig(n_queues=4, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n_flows, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    channels = ChannelConfig(n_priorities=2)
    flows = []
    for i in range(n_flows):
        f = Flow(i + 1, senders[i], recv, size_bytes, vpriority=1, start_ns=i * stagger_ns)
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)), channels, vpriority=1, probe_first=False
        )
        FlowSender(sim, net, f, cc, rto_ns=10**10)
        flows.append(f)
    return sim, net, flows


def _run_packet(sim, flows, deadline=2_000_000_000):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 1_000_000, deadline))
        if all(f.done for f in flows):
            break
        if sim.peek_time() is None:
            break
    return [f.fct_ns() for f in flows]


def test_driver_attached_but_packet_only_is_byte_identical():
    """With quiescence disabled the driver must be a pure pass-through."""
    sim_a, _, flows_a = _star_world(3, 200_000, 150_000)
    base = _run_packet(sim_a, flows_a)
    events_a = sim_a.events_processed

    sim_b, net_b, flows_b = _star_world(3, 200_000, 150_000)
    # backlog_enter_bytes=-1 makes the quiescence predicate unsatisfiable
    driver = HybridDriver(sim_b, net_b, FluidConfig(backlog_enter_bytes=-1))
    assert driver.run_until_flows_done(flows_b, 2_000_000_000)
    assert [f.fct_ns() for f in flows_b] == base
    assert sim_b.events_processed == events_a
    assert driver.stats["fluid_epochs"] == 0


def test_hybrid_star_agreement_and_speed():
    """Staggered solo flows: hybrid FCTs within 5% at far fewer events."""
    sim_p, _, flows_p = _star_world(5, 300_000, 600_000)
    packet_fcts = _run_packet(sim_p, flows_p)

    sim_h, net_h, flows_h = _star_world(5, 300_000, 600_000)
    driver = HybridDriver(sim_h, net_h)
    assert driver.run_until_flows_done(flows_h, 2_000_000_000)
    hybrid_fcts = [f.fct_ns() for f in flows_h]
    for p, h in zip(packet_fcts, hybrid_fcts):
        assert abs(p - h) / p < 0.05
    assert driver.stats["fluid_epochs"] >= 1
    assert driver.stats["fluid_completions"] >= 1
    assert sim_h.events_processed < sim_p.events_processed / 2


def test_fluid_admission_is_gated_by_pipe_fill_delay():
    """A flow starting inside an epoch completes ~one-way-delay later than
    the pure send-side staircase would predict (the pipe-fill gate)."""
    sim, net, flows = _star_world(2, 300_000, 600_000)
    driver = HybridDriver(sim, net)
    seen = []
    orig = driver._absorb

    def absorb(sender):
        orig(sender)
        seen.append((sender.flow.flow_id, driver._flows[-1].gate_ns, sim.now))

    driver._absorb = absorb
    assert driver.run_until_flows_done(flows, 2_000_000_000)
    fresh = [(fid, gate, now) for fid, gate, now in seen if gate > 0]
    assert fresh, "expected at least one fresh in-epoch admission"
    for _, gate, now in fresh:
        assert gate > now  # strictly in the future: delivery starts late


def test_regime_telemetry_and_sampler_rows():
    from repro.obs.sampler import sample_scope
    from repro.telemetry import Recorder, set_default_recorder

    rec = Recorder(events=True)
    set_default_recorder(rec)
    try:
        with sample_scope(stride_ns=100_000) as smp:
            sim, net, flows = _star_world(3, 300_000, 600_000)
            driver = HybridDriver(sim, net)
            assert driver.run_until_flows_done(flows, 2_000_000_000)
    finally:
        set_default_recorder(None)
    modes = [ev[1] for ev in rec.events["regime"]]
    assert "fluid" in modes and "packet" in modes
    assert rec.metrics.counter("regime.fluid").value >= 1
    assert any(r["mode"] == "fluid" for r in smp.regimes.rows)
    assert any(r["kind"] == "regime" for r in smp.rows())


def test_exit_on_contention_any_falls_back_on_sharing():
    """Two same-rank flows on one bottleneck: 'any' policy exits fluid."""
    sim, net, flows = _star_world(2, 400_000, 0)
    driver = HybridDriver(sim, net, FluidConfig(exit_on_contention="any"))
    assert driver.run_until_flows_done(flows, 2_000_000_000)
    # sharing flows either never left packet mode or exited on contention;
    # either way no epoch may end with reason "deadline" while both run
    assert driver.stats.get("exit_reasons", {}).get("contention:shared", 0) >= 0
    for f in flows:
        assert f.done


def test_fluid_config_rejects_unknown_policy():
    with pytest.raises(ValueError):
        FluidConfig(exit_on_contention="sometimes")


def test_prioplus_fluid_sync_resets_transition_state():
    from tests.helpers import FakeSender

    sender = FakeSender()
    cc = PrioPlusCC(
        Swift(SwiftParams(target_scaling=False)),
        ChannelConfig(n_priorities=2),
        vpriority=1,
        probe_first=False,
    )
    cc.attach(sender)
    cc.consec = 3
    cc.rtt_pass = True
    cc.dual_rtt_pass = True
    cc.fluid_sync(55_555.0)
    assert cc.inner.min_cwnd <= cc.inner.cwnd <= cc.inner.max_cwnd + 1e-6
    if cc.inner.min_cwnd <= 55_555.0 <= cc.inner.max_cwnd:
        assert cc.inner.cwnd == pytest.approx(55_555.0)
    assert cc.consec == 0
    assert cc.rtt_pass is False and cc.dual_rtt_pass is False
    assert cc.rtt_end_seq == sender.snd_nxt


def test_hybrid_on_fat_tree_mixed_ranks_completes():
    """Cross-rank contention forces exits; results stay sane end-to-end."""
    sim = Simulator(11)
    net, hosts = fat_tree(sim, k=4, rate_bps=100e9)
    channels = ChannelConfig(n_priorities=2)
    flows = []
    for i in range(6):
        f = Flow(
            i + 1,
            hosts[i % 8],
            hosts[8 + (i * 3) % 8],
            300_000,
            vpriority=1 + (i % 2),
            start_ns=i * 150_000,
        )
        cc = PrioPlusCC(
            Swift(SwiftParams(target_scaling=False)),
            channels,
            vpriority=1 + (i % 2),
            probe_first=False,
        )
        FlowSender(sim, net, f, cc, rto_ns=10**10)
        flows.append(f)
    driver = HybridDriver(sim, net)
    assert driver.run_until_flows_done(flows, 10_000_000_000)
    assert all(f.done for f in flows)
