"""Tests for the experiment-layer helpers: samplers, launch, factories."""

import pytest

from repro.cc.swift import Swift
from repro.core import StartTier
from repro.experiments.common import (
    CCFactory,
    DelaySampler,
    Mode,
    RateSampler,
    launch_specs,
    run_until_flows_done,
)
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender
from repro.workloads import FlowSpec


def _setup(n=2):
    sim = Simulator(1)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n, rate_bps=10e9, link_delay_ns=1000, switch_cfg=cfg)
    return sim, net, senders, recv


def test_rate_sampler_measures_goodput():
    sim, net, senders, recv = _setup(1)
    flow = Flow(1, senders[0], recv, 500_000)
    s = FlowSender(sim, net, flow, Swift())
    sampler = RateSampler(sim, [s], key=lambda s: "f", interval_ns=50_000)
    sim.run(until=1_000_000)
    assert flow.done
    series = sampler.series["f"]
    # time-integral of the sampled rate recovers the flow size (tolerances
    # for edge buckets)
    total = sum(r * 50_000 / 8e9 for _, r in series)
    assert total == pytest.approx(flow.size_bytes, rel=0.15)
    # average near line rate while transmitting
    assert sampler.average_rate_bps("f", 0, flow.completion_ns) > 0.5 * 10e9


def test_delay_sampler_records_series():
    sim, net, senders, recv = _setup(1)
    flow = Flow(1, senders[0], recv, 300_000)
    s = FlowSender(sim, net, flow, Swift())
    d = DelaySampler(sim, s, interval_ns=20_000)
    sim.run(until=500_000)
    values = d.values()
    assert len(values) > 5
    assert all(v >= s.base_rtt * 0.9 for v in values)


def test_launch_specs_binds_modes_and_groups():
    sim, net, senders, recv = _setup(2)
    hosts = senders + [recv]
    fac = CCFactory(Mode.PRIOPLUS, n_priorities=4)
    specs = [FlowSpec(0, 2, 50_000, 0, tag="a"), FlowSpec(1, 2, 50_000, 0, tag="b")]
    flows, snds = launch_specs(sim, net, specs, hosts, fac, group_of=lambda s: 0 if s.tag == "a" else 3)
    assert flows[0].vpriority == 4  # group 0 -> highest channel
    assert flows[1].vpriority == 1
    assert flows[0].priority == flows[1].priority == 0  # shared physical queue
    ok = run_until_flows_done(sim, flows, 100_000_000)
    assert ok


def test_launch_specs_d2tcp_sets_deadlines():
    sim, net, senders, recv = _setup(1)
    hosts = senders + [recv]
    fac = CCFactory(Mode.D2TCP, n_priorities=4)
    specs = [FlowSpec(0, 1, 100_000, 1000)]
    flows, _ = launch_specs(sim, net, specs, hosts, fac, group_of=lambda s: 0)
    assert flows[0].deadline_ns is not None
    assert flows[0].deadline_ns > 1000


def test_factory_tier_defaults():
    fac = CCFactory(Mode.PRIOPLUS, n_priorities=6)
    assert fac.tier(0) == StartTier.HIGH
    assert fac.tier(5) == StartTier.LOW
    assert fac.tier(2) == StartTier.MEDIUM


def test_factory_group_bounds():
    fac = CCFactory(Mode.PRIOPLUS, n_priorities=4)
    with pytest.raises(ValueError):
        fac.data_priority(4)
    with pytest.raises(ValueError):
        fac.vpriority(-1)


def test_factory_unknown_mode():
    with pytest.raises(ValueError):
        CCFactory("nonsense")


def test_switch_config_per_mode():
    pp = CCFactory(Mode.PRIOPLUS, n_priorities=8).switch_config()
    assert pp.n_queues == 2
    assert pp.ideal_headroom  # single-queue modes don't model headroom cost
    phys = CCFactory(Mode.PHYSICAL, n_priorities=8).switch_config()
    assert phys.n_queues == 9
    assert not phys.ideal_headroom
    hpcc = CCFactory(Mode.HPCC, n_priorities=8).switch_config()
    assert hpcc.ecn_k_bytes is not None  # ECN configured for ECN modes
    swift = CCFactory(Mode.SWIFT, n_priorities=8).switch_config()
    assert swift.ecn_k_bytes is None


def test_run_until_flows_done_deadline():
    sim, net, senders, recv = _setup(1)
    flow = Flow(1, senders[0], recv, 10_000_000_000)  # can never finish in time
    FlowSender(sim, net, flow, Swift())
    ok = run_until_flows_done(sim, [flow], hard_deadline_ns=200_000)
    assert not ok
    assert sim.now <= 210_000
