"""Pinned-seed golden battery: proves hot-path changes are byte-identical.

The battery runs a fixed set of small simulation scenarios chosen to cover
every hot-path mechanism the simulator has — PrioPlus probing, PFC
pause/resume, ECN marking, INT stamping (HPCC), shared-buffer drops with RTO
recovery, ECMP multipath on a fat-tree, and a mid-flight link cut — and
canonicalises their result dicts to JSON.

``tests/test_golden_results.py`` compares the battery against the committed
``tests/golden/core_results.json``.  The committed file was generated from the
pre-optimisation simulation core, so the test is the proof that the fused
tx/deliver events, the allocation-free scheduling fast path and packet pooling
did not change a single reduced result.

Regenerate (only when a *deliberate* semantic change is made)::

    PYTHONPATH=src python -m tests.golden_battery --write
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Tuple

from repro.cc import Hpcc, Swift, SwiftParams
from repro.cc.base import CongestionControl
from repro.experiments.ablations import (
    run_cardinality_ablation,
    run_collision_avoidance_ablation,
    run_filter_ablation,
)
from repro.experiments.fig8_testbed import run_staircase
from repro.experiments.fig10_micro import _run_fig10c
from repro.experiments.common import Mode
from repro.experiments.quickstart import run_quickstart
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcConfig
from repro.sim.switch import SwitchConfig
from repro.topology import fat_tree, leaf_spine, star
from repro.transport.flow import Flow
from repro.transport.sender import FlowSender

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "core_results.json")


# ----------------------------------------------------------------------
# custom micro-scenarios (cheap, and tighter on hot-path semantics than the
# figure experiments: they pin drops, retransmits, PFC counts and the clock)
# ----------------------------------------------------------------------
def _flow_stats(sim: Simulator, net, flows: List[Flow]) -> dict:
    return {
        "now": sim.now,
        "fcts": [f.fct_ns() if f.done else None for f in flows],
        "retransmits": [f.retransmits for f in flows],
        "probes": [f.probes_sent for f in flows],
        "drops": net.total_drops(),
        "pfc_pauses": net.total_pfc_pauses(),
    }


def pfc_incast() -> dict:
    """Static-xoff incast on a slow bottleneck: many PAUSE/RESUME cycles."""
    sim = Simulator(3)
    cfg = SwitchConfig(
        n_queues=2,
        buffer_bytes=64_000,
        headroom_per_port_per_prio=8_000,
        pfc=PfcConfig(enabled=True, xoff_bytes=4_000, dynamic=False),
    )
    net, senders, recv = star(sim, 3, rate_bps=100e9, link_delay_ns=100, switch_cfg=cfg)
    net.path_ports(senders[0], recv)[-1].ns_per_byte = 8.0  # ~1 Gbps bottleneck
    flows = [Flow(i + 1, senders[i], recv, 80_000) for i in range(3)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=80_000), rto_ns=10**12)
    sim.run(until=2_000_000_000)
    return _flow_stats(sim, net, flows)


def lossy_rto_recovery() -> dict:
    """Tiny lossy buffer (PFC off): tail drops, dup-ACK and RTO retransmits."""
    sim = Simulator(7)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=20_000, pfc=PfcConfig(enabled=False))
    net, senders, recv = star(sim, 4, rate_bps=10e9, link_delay_ns=1_000, switch_cfg=cfg)
    flows = [Flow(i + 1, senders[i], recv, 120_000) for i in range(4)]
    for f in flows:
        FlowSender(sim, net, f, Swift(SwiftParams(target_scaling=False)), rto_ns=400_000)
    sim.run(until=1_000_000_000)
    return _flow_stats(sim, net, flows)


def cut_mid_flight() -> dict:
    """Fibre cut while packets are queued and one is mid-transmission.

    Pins the cut semantics the fused tx/deliver event must preserve: queued
    packets drop, the in-flight packet still delivers, RTO recovers the rest
    after restore().
    """
    sim = Simulator(11)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=1_000, switch_cfg=cfg)
    flows = [Flow(i + 1, senders[i], recv, 150_000) for i in range(2)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=150_000), rto_ns=300_000)
    sim.run(until=30_000)  # mid-transfer: switch queue built, port transmitting
    sw = net.switches[0]
    dropped = net.set_link_state(sw, recv, up=False)
    sim.run(until=80_000)
    rx_during_cut = recv.rx_packets
    net.set_link_state(sw, recv, up=True)
    sim.run(until=1_000_000_000)
    out = _flow_stats(sim, net, flows)
    out["cut_dropped"] = dropped
    out["rx_packets_at_restore"] = rx_during_cut
    return out


def faulted_flap_mid_run() -> dict:
    """Declarative fault plan: a spine uplink flaps twice mid-transfer.

    Pins the whole repro.faults stack — schedule expansion from the plan's
    own RNG, blackhole drops during the detection window, route
    reconvergence, restore, and RTO/go-back-N recovery — byte-for-byte.
    """
    from repro.faults import FaultInjector, FaultPlan, FaultSpec, Schedule

    sim = Simulator(17)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, hosts = leaf_spine(
        sim, n_leaves=2, hosts_per_leaf=1, n_spines=2, host_rate_bps=10e9,
        oversubscription=1.0, link_delay_ns=1_000, switch_cfg=cfg,
    )
    plan = FaultPlan(
        [
            FaultSpec(
                "link_down",
                ["leaf0", "spine0"],
                Schedule("flap", at_ns=40_000, duration_ns=60_000, period_ns=200_000, count=2),
            )
        ],
        seed=23,
        detection_ns=20_000,
    )
    injector = FaultInjector(sim, net, plan).arm()
    flows = [Flow(1, hosts[0], hosts[1], 400_000), Flow(2, hosts[1], hosts[0], 250_000)]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=64_000), rto_ns=200_000)
    sim.run(until=1_000_000_000)
    out = _flow_stats(sim, net, flows)
    out["faults"] = injector.stats()
    return out


def hpcc_fat_tree() -> dict:
    """HPCC (INT stamping on every hop) across a k=4 fat-tree with ECMP."""
    sim = Simulator(5)
    cfg = SwitchConfig(n_queues=3, buffer_bytes=8 * 1024 * 1024)
    net, hosts = fat_tree(sim, k=4, rate_bps=10e9, switch_cfg=cfg)
    flows = []
    for i in range(4):
        f = Flow(i + 1, hosts[i], hosts[-(i + 1)], 60_000, priority=i % 2)
        flows.append(f)
        FlowSender(sim, net, f, Hpcc(), rto_ns=10**9)
    sim.run(until=1_000_000_000)
    return _flow_stats(sim, net, flows)


def paused_priority_star() -> dict:
    """Strict-priority scheduling with one class paused mid-run."""
    sim = Simulator(13)
    cfg = SwitchConfig(n_queues=4, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, 2, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    flows = [
        Flow(1, senders[0], recv, 100_000, priority=0),
        Flow(2, senders[1], recv, 100_000, priority=2),
    ]
    for f in flows:
        FlowSender(sim, net, f, CongestionControl(init_cwnd_bytes=100_000), rto_ns=10**12)
    bottleneck = net.path_ports(senders[0], recv)[-1]
    sim.at(20_000, bottleneck.set_paused, 0, True)
    sim.at(120_000, bottleneck.set_paused, 0, False)
    sim.run(until=1_000_000_000)
    return _flow_stats(sim, net, flows)


# ----------------------------------------------------------------------
# the battery
# ----------------------------------------------------------------------
_STAIR = dict(rate=10e9, stagger_ns=300_000, flows_per_prio=2, seed=1)

BATTERY: List[Tuple[str, Callable[[], object]]] = [
    ("quickstart", lambda: run_quickstart(low_bytes=600_000, high_bytes=200_000)),
    ("fig8_prioplus", lambda: run_staircase(mode=Mode.PRIOPLUS, priorities=(1, 2, 3, 4), **_STAIR)),
    (
        "fig8_swift_targets",
        lambda: run_staircase(mode=Mode.SWIFT_TARGETS, priorities=(1, 2, 3, 4), **_STAIR),
    ),
    (
        "fig10c_dual_rtt",
        lambda: _run_fig10c(
            dual_rtt=True, n_each=2, rate=10e9, duration_ns=1_200_000, hi_start_ns=200_000, seed=1
        ),
    ),
    (
        "ablation_collision",
        lambda: run_collision_avoidance_ablation(
            collision_avoidance=True, n_low=4, rate=10e9, duration_ns=800_000
        ),
    ),
    ("ablation_filter", lambda: run_filter_ablation(filter_consecutive=2, duration_ns=600_000)),
    (
        "ablation_cardinality",
        lambda: run_cardinality_ablation(
            cardinality_estimation=True, n_flows=8, rate=10e9, duration_ns=500_000
        ),
    ),
    ("pfc_incast", pfc_incast),
    ("lossy_rto_recovery", lossy_rto_recovery),
    ("cut_mid_flight", cut_mid_flight),
    ("faulted_flap_mid_run", faulted_flap_mid_run),
    ("hpcc_fat_tree", hpcc_fat_tree),
    ("paused_priority_star", paused_priority_star),
]


def run_battery() -> Dict[str, object]:
    from repro.runner.cache import json_safe

    return {name: json_safe(fn()) for name, fn in BATTERY}


def run_battery_audited(mode: str = "strict") -> Tuple[Dict[str, object], Dict[str, dict]]:
    """Run every scenario under a fresh :class:`repro.audit.Auditor`.

    Returns ``(results, audit_reports)``.  The results must be byte-identical
    to an unaudited run (the auditor must not feed back into the simulation);
    ``tests/test_audit.py`` and the CI ``audit-smoke`` job pin both halves.
    """
    from repro.audit import audit_scope
    from repro.runner.cache import json_safe

    results: Dict[str, object] = {}
    reports: Dict[str, dict] = {}
    for name, fn in BATTERY:
        with audit_scope(mode) as aud:
            results[name] = json_safe(fn())
        reports[name] = aud.report.to_dict()
    return results, reports


#: the --obs modes and the scope each installs around every scenario
_OBS_KINDS = ("trace", "sample", "profile", "inspect")


def run_battery_obs(kind: str) -> Tuple[Dict[str, object], Dict[str, dict]]:
    """Run every scenario with one ``repro.obs`` subsystem live.

    ``kind`` is one of ``trace`` (packet tracer, sample_every=1), ``sample``
    (time-series sampler), ``profile`` (engine self-profiler), ``inspect``
    (PrioPlus channel inspector) or ``all`` (all four at once).  Returns
    ``(results, obs_stats)``; the results must be byte-identical to the
    committed goldens — introspection must not feed back into the simulation.
    """
    from contextlib import ExitStack

    from repro.obs import inspect_scope, profile_scope, sample_scope, trace_scope
    from repro.runner.cache import json_safe

    kinds = _OBS_KINDS if kind == "all" else (kind,)
    results: Dict[str, object] = {}
    stats: Dict[str, dict] = {}
    for name, fn in BATTERY:
        with ExitStack() as stack:
            row: Dict[str, object] = {}
            if "trace" in kinds:
                tracer = stack.enter_context(trace_scope(sample_every=1))
            if "sample" in kinds:
                sampler = stack.enter_context(sample_scope(stride_ns=100_000))
            if "profile" in kinds:
                profiler = stack.enter_context(profile_scope())
            if "inspect" in kinds:
                inspector = stack.enter_context(inspect_scope())
            results[name] = json_safe(fn())
        if "trace" in kinds:
            row["traced"] = tracer.snapshot()["recorded"]
        if "sample" in kinds:
            row["samples"] = sampler.samples_taken
        if "profile" in kinds:
            row["events_profiled"] = profiler.events
        if "inspect" in kinds:
            row["transitions"] = sum(
                len(rec["transitions"]) for rec in inspector.report()["flows"].values()
            )
        stats[name] = row
    return results, stats


def canonical(results: Dict[str, object]) -> str:
    return json.dumps(results, sort_keys=True, indent=1)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true", help="write tests/golden/core_results.json")
    parser.add_argument(
        "--audit",
        nargs="?",
        const="strict",
        choices=("strict", "warn"),
        default=None,
        help="run under the invariant auditor; fails on any violation and on "
        "any divergence from the committed goldens (proves audit-on is "
        "byte-identical)",
    )
    parser.add_argument(
        "--obs",
        choices=("trace", "sample", "profile", "inspect", "all"),
        default=None,
        help="run with a repro.obs introspection subsystem live; fails on any "
        "divergence from the committed goldens (proves introspection-on is "
        "byte-identical)",
    )
    args = parser.parse_args()
    if args.obs:
        results, stats = run_battery_obs(args.obs)
        text = canonical(results)
        with open(GOLDEN_PATH, encoding="utf-8") as fh:
            golden = fh.read().rstrip("\n")
        if text != golden:
            print(f"OBS FAILED: results with --obs {args.obs} diverge from the "
                  "committed goldens (introspection fed back into the simulation)")
            return 1
        touched = sum(sum(row.values()) for row in stats.values())
        print(f"obs OK ({args.obs}): {len(results)} scenarios, "
              f"{touched} introspection records, results byte-identical to goldens")
        return 0
    if args.audit:
        results, reports = run_battery_audited(args.audit)
        text = canonical(results)
        bad = {name: rep for name, rep in reports.items() if rep["violation_count"]}
        if bad:
            print(json.dumps(bad, indent=1))
            print(f"AUDIT FAILED: violations in {sorted(bad)}")
            return 1
        with open(GOLDEN_PATH, encoding="utf-8") as fh:
            golden = fh.read().rstrip("\n")
        if text != golden:
            print("AUDIT FAILED: audited results diverge from committed goldens "
                  "(the auditor fed back into the simulation)")
            return 1
        checks = sum(sum(rep["checks"].values()) for rep in reports.values())
        print(f"audit OK: {len(results)} scenarios, {checks} checks, 0 violations, "
              f"results byte-identical to goldens")
        return 0
    results = run_battery()
    text = canonical(results)
    if args.write:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH} ({len(results)} scenarios)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
