"""Coflow grouping/tracking and ring all-reduce tests."""

import random

import pytest

from repro.cc.swift import Swift, SwiftParams
from repro.coflow import CoflowTracker, assign_coflow_groups, log_boundaries, size_group
from repro.mlsim import RESNET50, VGG16, ModelProfile, TrainingJob, scaled_model
from repro.sim.engine import Simulator
from repro.sim.switch import SwitchConfig
from repro.topology import star
from repro.transport.flow import Flow
from repro.workloads import synthesize_coflows


# ----------------------------------------------------------------------
# grouping
# ----------------------------------------------------------------------
def test_size_group_boundaries():
    assert size_group(5, [10, 100]) == 0
    assert size_group(50, [10, 100]) == 1
    assert size_group(5000, [10, 100]) == 2


def test_log_boundaries_monotone():
    sizes = [10, 100, 1_000, 10_000, 100_000]
    b = log_boundaries(sizes, 4)
    assert b == sorted(b)
    assert len(b) == 3


def test_assign_groups_smaller_is_higher_priority():
    rng = random.Random(1)
    coflows = synthesize_coflows(rng, 16, 60, duration_ns=1000)
    groups = assign_coflow_groups(coflows, 8)
    smallest = min(coflows, key=lambda c: c.total_bytes)
    biggest = max(coflows, key=lambda c: c.total_bytes)
    assert groups[smallest.coflow_id] <= groups[biggest.coflow_id]
    assert set(groups.values()) <= set(range(8))
    # monotone: bigger coflow never gets a strictly smaller group index
    ordered = sorted(coflows, key=lambda c: c.total_bytes)
    gs = [groups[c.coflow_id] for c in ordered]
    assert gs == sorted(gs)


def test_tracker_cct():
    tracker = CoflowTracker()
    tracker.register(1, start_ns=100, n_flows=2)
    f1 = Flow(1, None, None, 10, tag=("coflow", 1))
    f2 = Flow(2, None, None, 10, tag=("coflow", 1))
    f1.completion_ns = 500
    tracker.on_flow_done(f1)
    with pytest.raises(RuntimeError):
        tracker.cct_ns(1)
    f2.completion_ns = 900
    tracker.on_flow_done(f2)
    assert tracker.cct_ns(1) == 800
    assert tracker.completed_ids() == [1]
    assert tracker.all_ccts() == {1: 800}


def test_tracker_ignores_unrelated_flows():
    tracker = CoflowTracker()
    tracker.register(1, 0, 1)
    f = Flow(9, None, None, 10, tag="not-a-coflow")
    f.completion_ns = 5
    tracker.on_flow_done(f)
    assert tracker.completed_ids() == []


# ----------------------------------------------------------------------
# ring all-reduce
# ----------------------------------------------------------------------
def test_model_profiles():
    assert RESNET50.gradient_bytes < VGG16.gradient_bytes
    small = scaled_model(VGG16, 0.001)
    assert small.gradient_bytes == pytest.approx(VGG16.gradient_bytes * 0.001, rel=0.01)
    with pytest.raises(ValueError):
        scaled_model(VGG16, 0)
    with pytest.raises(ValueError):
        ModelProfile("bad", 0, 0)


def _cluster(n_hosts=4):
    sim = Simulator(5)
    cfg = SwitchConfig(n_queues=2, buffer_bytes=8 * 1024 * 1024)
    net, senders, recv = star(sim, n_hosts - 1, rate_bps=10e9, link_delay_ns=500, switch_cfg=cfg)
    hosts = senders + [recv]
    return sim, net, hosts


def test_training_job_completes_iterations():
    sim, net, hosts = _cluster(4)
    model = ModelProfile("toy", gradient_bytes=40_000, compute_ns=10_000)
    job = TrainingJob(
        sim, net, hosts, model,
        cc_factory=lambda flow: Swift(SwiftParams(target_scaling=False)),
        flow_id_start=1, max_iterations=3,
    )
    sim.run(until=1_000_000_000)
    assert job.iterations_done == 3
    assert len(job.iteration_times_ns) == 3
    assert job.n_phases == 2 * (len(hosts) - 1)
    assert job.chunk_bytes == model.gradient_bytes // len(hosts)
    assert job.iterations_in_window(1_000_000) > 0


def test_training_job_phases_are_sequential():
    """Total per-iteration traffic = 2(N-1) * N * chunk bytes."""
    sim, net, hosts = _cluster(4)
    model = ModelProfile("toy", gradient_bytes=40_000, compute_ns=0)
    job = TrainingJob(
        sim, net, hosts, model,
        cc_factory=lambda flow: Swift(SwiftParams(target_scaling=False)),
        flow_id_start=1, max_iterations=1,
    )
    sim.run(until=1_000_000_000)
    n = len(hosts)
    expected_payload = job.n_phases * n * job.chunk_bytes
    delivered = sum(h.rx_bytes for h in hosts)
    # rx includes headers and ACK frames; payload is the dominant share
    assert delivered > expected_payload


def test_training_job_stop():
    sim, net, hosts = _cluster(3)
    model = ModelProfile("toy", gradient_bytes=30_000, compute_ns=1000)
    job = TrainingJob(
        sim, net, hosts, model,
        cc_factory=lambda flow: Swift(SwiftParams(target_scaling=False)),
        flow_id_start=1,
    )
    sim.run(until=300_000)
    job.stop()
    done = job.iterations_done
    sim.run(until=2_000_000_000)
    assert job.iterations_done <= done + 1  # at most the in-flight iteration


def test_training_job_needs_two_hosts():
    sim, net, hosts = _cluster(3)
    with pytest.raises(ValueError):
        TrainingJob(sim, net, hosts[:1], RESNET50, lambda f: None, flow_id_start=1)
