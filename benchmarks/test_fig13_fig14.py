"""Figure 13 (non-congestive delay) and Figure 14 (per-priority breakdown)."""

from repro.experiments.common import Mode
from repro.experiments.fig13_noncongestive import run_fig13_point
from repro.experiments.fig14_breakdown import normalize_to_physical, run_fig14
from repro.experiments.flowsched import FlowSchedConfig
from repro.experiments.report import format_table


def test_fig13_tolerance_absorbs_noncongestive_delay(benchmark):
    def points():
        tol = 10.0
        within = run_fig13_point(tol, noncongestive_range_us=6.0, stagger_ns=500_000)
        beyond = run_fig13_point(tol, noncongestive_range_us=40.0, stagger_ns=500_000)
        return within, beyond

    within, beyond = benchmark.pedantic(points, rounds=1, iterations=1)
    print(f"\nFig 13 (tolerance 10us): gap@range6us={within:.3f} gap@range40us={beyond:.3f}")
    # ranges inside the configured tolerance barely move the FCT gap;
    # ranges well beyond it degrade it markedly
    assert beyond > within * 1.5


def test_fig14_priority_level_breakdown(benchmark):
    cfg = FlowSchedConfig(rate_bps=100e9, duration_ns=400_000, size_scale=0.1, load=0.5)

    def runs():
        out = {}
        for mode in (Mode.PRIOPLUS, Mode.PHYSICAL_IDEAL):
            out[mode] = run_fig14(mode, n_priorities=6, cfg=cfg)
        return out

    results = benchmark.pedantic(runs, rounds=1, iterations=1)
    norm = normalize_to_physical(results)
    rows = []
    for (tier, bucket), ratio in sorted(norm[Mode.PRIOPLUS].items()):
        cell = results[Mode.PRIOPLUS]["cells"][(tier, bucket)]
        rows.append([tier, bucket, cell["count"], round(cell["mean_us"], 1), round(ratio, 3)])
    print("\n" + format_table(
        ["prio tier", "size bucket", "n", "PrioPlus mean (us)", "vs Physical*"],
        rows,
        title="Fig 14: FCT by priority level x size, normalised to Physical*+Swift",
    ))

    pp = results[Mode.PRIOPLUS]["cells"]
    # the paper's headline: a high D_target does not condemn high-priority
    # sub-RTT flows to high delay — their FCT stays a small multiple of the
    # base RTT (~4-13 us here) even though D_target is tens of us
    if ("high", "sub_rtt") in pp:
        assert pp[("high", "sub_rtt")]["mean_us"] < 40.0
    # and high-priority traffic is consistently faster than low-priority
    hi_cells = [v["mean_us"] for (t, b), v in pp.items() if t == "high"]
    lo_cells = [v["mean_us"] for (t, b), v in pp.items() if t == "low" and b != "sub_rtt"]
    if hi_cells and lo_cells:
        assert min(lo_cells) >= min(hi_cells)
