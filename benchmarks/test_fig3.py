"""Figures 1 & 3: existing CCs cannot provide virtual priority (§3)."""

from repro.experiments.common import Mode
from repro.experiments.fig3_micro import _run_fig3a, _run_fig3b, _run_fig3c, _run_fig3d
from repro.sim.engine import MILLISECOND


def test_fig3a_d2tcp_not_strict(benchmark):
    r = benchmark.pedantic(_run_fig3a, kwargs={"size_bytes": 1_000_000}, rounds=1, iterations=1)
    print(f"\nFig 3a (D2TCP): {r}")
    # both flows decelerate on ECN: the urgent flow misses its 1x-ideal
    # deadline and the other flow keeps a sizeable share meanwhile (no O1)
    assert r["hi_met_deadline"] == 0.0
    assert r["hi_fct_over_ideal"] > 1.5
    assert r["lo_share_during_hi"] > 0.2


def test_fig3b_swift_scaling_weighted_not_strict(benchmark):
    r = benchmark.pedantic(_run_fig3b, kwargs={"duration_ns": 2 * MILLISECOND}, rounds=1, iterations=1)
    print(f"\nFig 3b (Swift + target scaling): {r}")
    # weighted sharing: lows keep a visible share (violates O1)...
    assert r["lo_share"] > 0.03
    assert r["hi_share"] < 0.95
    # ...while the port stays busy (it is weighted sharing, not collapse)
    assert r["utilization"] > 0.85


def test_fig3c_swift_no_scaling_many_flows(benchmark):
    r = benchmark.pedantic(
        _run_fig3c,
        kwargs={"n_low": 100, "duration_ns": 3 * MILLISECOND},
        rounds=1,
        iterations=1,
    )
    print(f"\nFig 3c (Swift w/o scaling, 100 lows + 1 hi): {r}")
    # the late high-priority flow cannot take the full line (violates O1)
    assert r["hi_share_after"] < 0.9


def test_fig3d_min_rate_and_slow_reclaim(benchmark):
    r = benchmark.pedantic(_run_fig3d, rounds=1, iterations=1)
    print(f"\nFig 3d (Swift w/o scaling trade-offs): {r}")
    # lows pinned near the 100 Mbps floor while the highs run
    assert r["lo_min_rate_share"] < 0.02
    # after the highs finish, reclaim is slow (bandwidth wasted, violates O2)
    assert r["lo_share_after"] < 0.5
