"""Figures 16, 17, 18: ACK priority sensitivity, lossy operation, HPCC/no-CC."""

from repro.experiments.common import Mode
from repro.experiments.fig12_coflow import ci_config, _run_fig17, _run_fig18
from repro.experiments.fig16_ack_hpcc import _run_fig16
from repro.experiments.flowsched import FlowSchedConfig
from repro.experiments.report import format_table


def test_fig16_ack_priority_and_hpcc(benchmark):
    cfg = FlowSchedConfig(rate_bps=100e9, duration_ns=400_000, size_scale=0.1)
    results = benchmark.pedantic(
        _run_fig16, kwargs={"n_priorities": 8, "cfg": cfg}, rounds=1, iterations=1
    )
    by_mode = {r["mode"]: r for r in results}
    rows = [
        [m, round(r["fct"]["all"]["mean_us"], 1), round(r["fct"]["all"]["p99_us"], 1)]
        for m, r in by_mode.items()
    ]
    print("\n" + format_table(["mode", "mean FCT (us)", "p99 FCT (us)"], rows,
                              title="Fig 16: PrioPlus* (same-priority ACKs) and HPCC"))
    pp = by_mode[Mode.PRIOPLUS]["fct"]["all"]["mean_us"]
    pp_star = by_mode[Mode.PRIOPLUS_SAME_ACK]["fct"]["all"]["mean_us"]
    hpcc = by_mode[Mode.HPCC]["fct"]["all"]["mean_us"]
    # PrioPlus* stays close to PrioPlus (paper: within ~10%)
    assert pp_star <= pp * 1.35
    # HPCC (which here still enjoys 8 physical queues) stays within the same
    # ballpark as single-queue PrioPlus.  At the paper's scale HPCC is >= 15%
    # *worse*; at CI scale physical-queue backlog scheduling flatters every
    # multi-queue baseline (see EXPERIMENTS.md), so the assertion is bounded
    # both ways instead.
    assert pp <= hpcc * 2.0
    assert hpcc <= pp * 2.0


def test_fig17_lossy_environment(benchmark):
    lossless = ci_config(load=0.7, duration_ns=1_200_000)
    lossy = ci_config(load=0.7, duration_ns=1_200_000, lossy=True)

    def both():
        a = _run_fig17(lossy)
        from repro.experiments.coflow_scenario import run_coflow_comparison

        b = run_coflow_comparison([Mode.PRIOPLUS], lossless)
        return a, b

    lossy_res, lossless_res = benchmark.pedantic(both, rounds=1, iterations=1)
    s_lossy = lossy_res["speedups"][Mode.PRIOPLUS]
    s_lossless = lossless_res["speedups"][Mode.PRIOPLUS]
    print(f"\nFig 17 PrioPlus speedup lossy={s_lossy['overall']:.3f} "
          f"lossless={s_lossless['overall']:.3f}")
    # the paper: PrioPlus behaves nearly the same without PFC (IRN recovery),
    # because good delay management keeps losses rare
    assert s_lossy["completed"] == s_lossless["completed"]
    assert s_lossy["overall"] > 1.0
    assert abs(s_lossy["overall"] - s_lossless["overall"]) / s_lossless["overall"] < 0.35


def test_fig18_hpcc_and_nocc_coflows(benchmark):
    cfg = ci_config(load=0.7, duration_ns=1_200_000)
    result = benchmark.pedantic(_run_fig18, kwargs={"cfg": cfg}, rounds=1, iterations=1)
    rows = []
    for mode, s in result["speedups"].items():
        rows.append([mode, round(s["overall"], 3), round(s.get("high4", float("nan")), 3),
                     round(s.get("low4", float("nan")), 3)])
    print("\n" + format_table(["mode", "overall", "high-4", "low-4"], rows,
                              title="Fig 18: coflow speedups incl. HPCC and Physical w/o CC"))
    s = result["speedups"]
    # PrioPlus beats HPCC on average CCT (paper: HPCC 24% worse)
    assert s[Mode.PRIOPLUS]["overall"] > s[Mode.HPCC]["overall"]
