"""Figures 12a/12b/15 (coflows) and 12c (ML training), reduced scale."""

from repro.experiments.common import Mode
from repro.experiments.fig12_coflow import ci_config, _run_fig12ab
from repro.experiments.mltrain import MlTrainConfig, run_mltrain_comparison
from repro.experiments.report import format_table
from repro.sim.engine import MILLISECOND


def _print_speedups(title, result):
    rows = []
    for mode, s in result["speedups"].items():
        rows.append([
            mode,
            round(s.get("overall", float("nan")), 3),
            round(s.get("high4", float("nan")), 3),
            round(s.get("low4", float("nan")), 3),
            round(s.get("overall_p99_slowdown", float("nan")), 3),
        ])
    print("\n" + format_table(
        ["mode", "overall speedup", "high-4", "low-4", "p99 slowdown"], rows, title=title
    ))


def test_fig12a_coflow_speedup_load40(benchmark):
    cfg = ci_config(load=0.4, duration_ns=1_500_000)
    result = benchmark.pedantic(_run_fig12ab, kwargs={"cfg": cfg}, rounds=1, iterations=1)
    _print_speedups("Fig 12a: coflow CCT speedup vs Swift baseline (40% load)", result)
    s = result["speedups"]
    # priority scheduling accelerates the small (high-priority) coflows for
    # both systems at 40% load
    assert s[Mode.PRIOPLUS]["high4"] > 1.0
    assert s[Mode.PHYSICAL]["high4"] > 1.0


def test_fig12b_coflow_speedup_load70(benchmark):
    cfg = ci_config(load=0.7, duration_ns=1_500_000)
    result = benchmark.pedantic(_run_fig12ab, kwargs={"cfg": cfg}, rounds=1, iterations=1)
    _print_speedups("Fig 12b/15: coflow CCT speedup vs Swift baseline (70% load)", result)
    s = result["speedups"]
    assert s[Mode.PRIOPLUS]["high4"] > 1.0
    assert s[Mode.PRIOPLUS]["overall"] > 1.0
    # every job completed under both systems
    assert s[Mode.PRIOPLUS]["completed"] == s[Mode.PHYSICAL]["completed"]


def test_fig12c_mltrain_speedup(benchmark):
    cfg = MlTrainConfig(duration_ns=8 * MILLISECOND)
    result = benchmark.pedantic(
        run_mltrain_comparison, kwargs={"cfg": cfg}, rounds=1, iterations=1
    )
    rows = []
    for mode, s in result["speedups"].items():
        rows.append([mode] + [round(s.get(k, float("nan")), 3) for k in ("resnet", "vgg", "overall")])
    print("\n" + format_table(
        ["mode", "resnet", "vgg", "overall"],
        rows,
        title="Fig 12c: training-speed speedup vs Swift baseline",
    ))
    s = result["speedups"]
    # both systems accelerate the favoured (ResNet) family...
    assert s[Mode.PRIOPLUS]["resnet"] > 1.0
    assert s[Mode.PHYSICAL]["resnet"] > 1.0
    # ...but PrioPlus hurts the lower-priority family (VGG) less than
    # physical priority does — the paper's fairness headline
    assert s[Mode.PRIOPLUS]["vgg"] > s[Mode.PHYSICAL]["vgg"]
