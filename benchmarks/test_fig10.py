"""Figure 10: PrioPlus micro-benchmarks (§6.1), reduced scale."""

from repro.experiments.fig10_micro import (
    _run_fig10a,
    _run_fig10b,
    _run_fig10c,
    _run_fig10d,
)
from repro.sim.engine import MILLISECOND


def test_fig10a_eight_priority_staircase(benchmark):
    r = benchmark.pedantic(
        _run_fig10a,
        kwargs=dict(n_priorities=4, flows_per_prio=5, rate=25e9, stagger_ns=1 * MILLISECOND),
        rounds=1,
        iterations=1,
    )
    print(f"\nFig 10a: leak={r['max_leak_share']:.3f} reclaim_us={['%.0f' % t for t in r['reclaim_us']]} "
          f"util={r['utilization']:.3f}")
    # O1: strict yield; O2: fast reclaim and high utilisation
    assert r["max_leak_share"] < 0.30
    assert r["max_reclaim_us"] < 600
    assert r["utilization"] > 0.85
    assert r["drops"] == 0


def test_fig10b_incast_delay_near_target(benchmark):
    r = benchmark.pedantic(
        _run_fig10b,
        kwargs=dict(n_flows=60, rate=25e9, duration_ns=3 * MILLISECOND),
        rounds=1,
        iterations=1,
    )
    print(f"\nFig 10b: {r}")
    # the cardinality estimator pins delay below D_limit despite the incast
    assert r["frac_above_limit"] < 0.05
    # and the estimate is in the right ballpark (60 flows)
    assert 20 <= r["nflow_estimate"] <= 120


def test_fig10c_dual_rtt_avoids_overreaction(benchmark):
    def both():
        dual = _run_fig10c(True, n_each=5, rate=25e9, duration_ns=2 * MILLISECOND, hi_start_ns=700_000)
        every = _run_fig10c(False, n_each=5, rate=25e9, duration_ns=2 * MILLISECOND, hi_start_ns=700_000)
        return dual, every

    dual, every = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nFig 10c dual-RTT: {dual}")
    print(f"Fig 10c every-RTT: {every}")
    # the ablation overshoots the target delay and oscillates in rate
    assert dual["max_delay_overshoot_us"] < every["max_delay_overshoot_us"]
    assert dual["hi_rate_std_share"] < every["hi_rate_std_share"]
    assert dual["hi_rate_mean_share"] > 0.85


def test_fig10d_channel_width_grows_with_noise(benchmark):
    r = benchmark.pedantic(
        _run_fig10d,
        kwargs=dict(noise_scales=(1.0, 4.0, 8.0), n_flows=3, rate=25e9, duration_ns=1_500_000),
        rounds=1,
        iterations=1,
    )
    print(f"\nFig 10d required noise budget B (us) per noise scale: {r}")
    assert r[1.0] <= r[4.0] <= r[8.0]
    assert r[8.0] > r[1.0]
    assert r[8.0] != float("inf")
