"""Figures 6, 8, 9: dual-RTT observability and the testbed experiments."""

from repro.experiments.common import Mode
from repro.experiments.fig6_dualrtt import _run_fig6
from repro.experiments.fig8_testbed import _run_fig8
from repro.experiments.fig9_fluct import _run_fig9
from repro.sim.engine import MILLISECOND


def test_fig6_increase_visible_after_two_rtts(benchmark):
    r = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)
    print(f"\nFig 6: {r}")
    assert r["lag_rtts"] == 2.0


def test_fig8_prioplus_vs_swift_staircase(benchmark):
    def both():
        pp = _run_fig8(Mode.PRIOPLUS, stagger_ns=2 * MILLISECOND)
        sw = _run_fig8(Mode.SWIFT_TARGETS, stagger_ns=2 * MILLISECOND)
        return pp, sw

    pp, sw = benchmark.pedantic(both, rounds=1, iterations=1)
    for r in (pp, sw):
        print(f"\nFig 8 [{r['mode']}]: takeover_us={['%.0f' % t for t in r['takeover_us']]} "
              f"reclaim_us={['%.0f' % t for t in r['reclaim_us']]} "
              f"leak={r['max_leak_share']:.3f} util={r['utilization']:.3f}")
    # O1: while a priority reigns, lower priorities leak little bandwidth,
    # and PrioPlus leaks less than Swift with per-priority targets
    assert pp["max_leak_share"] < sw["max_leak_share"]
    # O2: PrioPlus reclaims the line faster after a priority finishes
    assert pp["max_reclaim_us"] < sw["max_reclaim_us"]
    # and wastes less bandwidth overall
    assert pp["utilization"] > sw["utilization"]
    assert pp["drops"] == 0


def test_fig9_cardinality_estimation_tames_fluctuations(benchmark):
    def both():
        pp = _run_fig9(Mode.PRIOPLUS, duration_ns=6 * MILLISECOND)
        sw = _run_fig9(Mode.SWIFT_TARGETS, duration_ns=6 * MILLISECOND)
        return pp, sw

    pp, sw = benchmark.pedantic(both, rounds=1, iterations=1)
    for r in (pp, sw):
        print(f"\nFig 9 [{r['mode']}]: mean={r['mean_delay_us']:.1f}us "
              f"std={r['std_delay_us']:.2f}us frac<=limit={r['frac_below_limit']:.4f}")
    # PrioPlus keeps the delay below D_limit at least as reliably as Swift
    # with inflated AI steps (the paper's Fig 9 contrast)
    assert pp["frac_below_limit"] >= sw["frac_below_limit"]
    assert pp["frac_below_limit"] > 0.97
