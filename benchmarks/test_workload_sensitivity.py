"""Robustness check: PrioPlus across three flow-size mixes.

Not a paper figure — a reviewer-style sanity sweep showing the mechanism is
not tuned to WebSearch: the same channels schedule the Facebook-Hadoop mix
(tiny median, enormous tail) and a storage mix (bimodal) correctly.
"""

from repro.experiments.common import Mode
from repro.experiments.flowsched import FlowSchedConfig, run_flowsched
from repro.experiments.report import format_table
from repro.workloads import ali_storage, hadoop, websearch


def test_prioplus_across_workloads(benchmark):
    def sweep():
        out = {}
        for name, factory, scale in (
            ("websearch", websearch, 0.1),
            ("hadoop", hadoop, 0.002),
            ("storage", ali_storage, 0.2),
        ):
            cfg = FlowSchedConfig(
                rate_bps=100e9, duration_ns=300_000, size_scale=scale, cdf_factory=factory
            )
            out[name] = run_flowsched(Mode.PRIOPLUS, 8, cfg)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        fct = r["fct"]["all"]
        rows.append([name, r["n_flows"], round(fct["mean_us"], 1), round(fct["p99_us"], 1),
                     r["drops"]])
    print("\n" + format_table(
        ["workload", "flows", "mean FCT (us)", "p99 FCT (us)", "drops"], rows,
        title="PrioPlus (8 virtual priorities) across flow-size mixes:",
    ))
    for name, r in results.items():
        assert r["all_done"], name
        assert r["drops"] == 0, name
