"""Figure 11: flow-scheduling FCT vs number of priorities (reduced scale).

The bench replays the same WebSearch workload under the four systems at the
paper's headline priority count (8) and prints the Fig 11a-d rows (total /
small / middle / large, mean and p99).
"""

from repro.experiments.common import Mode
from repro.experiments.flowsched import FlowSchedConfig, run_flowsched
from repro.experiments.report import format_table

CFG = FlowSchedConfig(rate_bps=100e9, duration_ns=500_000, size_scale=0.1)
MODES = (Mode.PRIOPLUS, Mode.PHYSICAL, Mode.PHYSICAL_IDEAL, Mode.PHYSICAL_IDEAL_NOCC)


def test_fig11_fct_breakdown(benchmark):
    def sweep():
        return {mode: run_flowsched(mode, 8, CFG) for mode in MODES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for mode, r in results.items():
        fct = r.get("fct", {})
        row = [mode, r["n_done"], r["pfc_pauses"], r["drops"]]
        for cls in ("all", "small", "middle", "large"):
            stats = fct.get(cls)
            row.append(round(stats["mean_us"], 1) if stats else "-")
            row.append(round(stats["p99_us"], 1) if stats else "-")
        rows.append(row)
    print("\n" + format_table(
        ["mode", "done", "pfc", "drop",
         "all mean", "all p99", "small mean", "small p99",
         "mid mean", "mid p99", "large mean", "large p99"],
        rows,
        title="Fig 11 (8 priorities, reduced fat-tree):",
    ))

    pp = results[Mode.PRIOPLUS]["fct"]
    ideal = results[Mode.PHYSICAL_IDEAL]["fct"]
    nocc = results[Mode.PHYSICAL_IDEAL_NOCC]["fct"]

    # everything completes, losslessly, in every mode
    for mode, r in results.items():
        assert r["all_done"], f"{mode} left flows unfinished"
        assert r["drops"] == 0, f"{mode} dropped packets"

    # O1: PrioPlus keeps small (high-priority) flows in the same ballpark as
    # ideal physical queues at the median (start-path overheads show up in
    # the mean; see EXPERIMENTS.md for the scale discussion)
    assert pp["small"]["p50_us"] <= ideal["small"]["p50_us"] * 1.6

    # Physical* w/o CC devastates medium/large tails versus CC-managed runs
    assert nocc["middle"]["p99_us"] > ideal["middle"]["p99_us"]

    # overall ordering: PrioPlus within a small factor of Physical*
    assert pp["all"]["mean_us"] <= ideal["all"]["mean_us"] * 2.5


def test_fig11_physical_headroom_ceiling(benchmark):
    """Real physical queues cannot exceed 8 priorities (protocol limit)."""
    import pytest
    from repro.experiments.common import CCFactory

    def check():
        with pytest.raises(ValueError):
            CCFactory(Mode.PHYSICAL, n_priorities=9)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
