"""Static reproductions: Fig 2, Table 2, Fig 5/App C, Fig 7, Fig 19/App D.

These regenerate the paper's closed-form tables and characterisations
directly from the analysis modules (no packet simulation involved).
"""

import random

from repro.analysis import (
    SWITCH_CHIPS,
    buffer_bandwidth_ratios,
    channel_width_ns,
    linear_start_is_optimal,
    start_strategy_costs,
    swift_fluctuation_ns,
)
from repro.experiments.report import format_table
from repro.noise import paper_noise


def test_fig2_buffer_bandwidth_ratio_declines(benchmark):
    ratios = benchmark.pedantic(buffer_bandwidth_ratios, rounds=1, iterations=1)
    print("\n" + format_table(
        ["chip", "year", "MB/Tbps"],
        [(n, y, round(r, 1)) for n, y, r in ratios],
        title="Fig 2: buffer-to-bandwidth ratio by switch generation",
    ))
    # the paper's observation: Trident2 ~9.4, Tomahawk4 ~4.4, monotone-ish decline
    by_name = {n: r for n, _, r in ratios}
    assert 8.5 <= by_name["Trident2"] <= 10.5
    assert 3.9 <= by_name["Tomahawk4"] <= 4.9
    assert by_name["Tomahawk4"] < by_name["Trident2"] / 2


def test_table2_start_strategies(benchmark):
    costs = benchmark.pedantic(start_strategy_costs, args=(8,), rounds=1, iterations=1)
    rows = [
        (name, c["bytes_delayed_bdp"], c["max_extra_buffer_bdp"])
        for name, c in costs.items()
    ]
    print("\n" + format_table(
        ["strategy", "bytes delayed (BDP)", "max extra buffer (BDP)"],
        rows,
        title="Table 2: start strategies at n = 8 RTTs",
    ))
    assert costs["line_rate"]["max_extra_buffer_bdp"] == 1.0
    assert costs["exponential"]["max_extra_buffer_bdp"] == 0.5
    assert costs["linear"]["max_extra_buffer_bdp"] == 1.0 / 8
    assert costs["linear"]["bytes_delayed_bdp"] == 4.0
    assert costs["exponential"]["bytes_delayed_bdp"] == 6.5


def test_appendix_c_linear_start_optimality(benchmark):
    linear, best_alt = benchmark.pedantic(
        linear_start_is_optimal, rounds=1, iterations=1
    )
    print(f"\nApp C: linear backlog={linear:.4f}, best alternative={best_alt:.4f}")
    assert linear <= best_alt * 1.001  # Theorem 4.1


def test_fig7_delay_noise_statistics(benchmark):
    noise = paper_noise()

    def sample_stats():
        rng = random.Random(123)
        xs = [noise.sample(rng) for _ in range(40_000)]
        xs.sort()
        return (
            sum(xs) / len(xs),
            xs[int(0.999 * len(xs))],
            min(xs),
        )

    mean, p999, minimum = benchmark.pedantic(sample_stats, rounds=1, iterations=1)
    print(f"\nFig 7: mean={mean:.0f}ns p99.9={p999:.0f}ns min={minimum}ns")
    # paper: mean ~0.3 us, <0.1% above 1 us, additive (non-negative)
    assert 200 <= mean <= 400
    assert 700 <= p999 <= 1500
    assert minimum >= 0


def test_fig19_swift_fluctuation_bound(benchmark):
    def rows():
        out = []
        for n in (1, 10, 50, 150):
            f = swift_fluctuation_ns(n, 150.0, 100e9, 20_000)
            out.append((n, round(f / 1000, 2)))
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    print("\n" + format_table(["flows", "fluctuation (us)"], table,
                              title="App D: Swift worst-case fluctuation"))
    values = dict(table)
    assert values[150] > values[10] > 0
    # the paper budgets 3.2 us of channel width for 150 Swift flows at 100G:
    # the A component (above-target part n*W_AI/R) is ~1.8 us, total ~10-12 us
    # with the conservative max_mdf floor; the A+B budget check:
    step, margin = channel_width_ns(3200, 800)
    assert step == 4000 and margin == 2400
