"""Ablations & extensions: design-choice validations beyond the paper's figures.

* Table 2 validated *empirically* (start strategies on a busy link);
* noise filter, cardinality estimation, probe collision avoidance on/off;
* Appendix-B prototype: per-priority ECN marking for DCTCP;
* §7 future work: weighted virtual priority keeps a residual share.
"""

from repro.experiments.ablations import (
    run_cardinality_ablation,
    run_collision_avoidance_ablation,
    run_filter_ablation,
)
from repro.experiments.ecn_priority import run_ecn_priority
from repro.experiments.report import format_table
from repro.experiments.table2_validation import run_table2_validation


def test_table2_empirical_validation(benchmark):
    r = benchmark.pedantic(run_table2_validation, rounds=1, iterations=1)
    rows = [
        (k, round(v["peak_extra_buffer_bdp"], 3), round(v["fct_ns"] / 1e3, 1))
        for k, v in r.items()
    ]
    print("\n" + format_table(
        ["strategy", "peak extra buffer (BDP)", "FCT (us)"], rows,
        title="Table 2, measured on a 75%-utilised link:",
    ))
    # Table 2's ordering: linear start buffers far less than both others...
    assert r["linear"]["peak_extra_buffer_bdp"] < 0.5 * r["line_rate"]["peak_extra_buffer_bdp"]
    assert r["linear"]["peak_extra_buffer_bdp"] < 0.5 * r["exponential"]["peak_extra_buffer_bdp"]
    # ...at the cost of a slower transfer (bytes delayed)
    assert r["line_rate"]["fct_ns"] <= r["exponential"]["fct_ns"] <= r["linear"]["fct_ns"]
    # NOTE: measured exponential ~= line-rate because the delay signal lags
    # the window increase by 2 RTTs (the paper's own Fig 6 insight), letting
    # slow start take two extra doublings beyond the analytical stop point.


def test_filter_ablation(benchmark):
    def both():
        return run_filter_ablation(2), run_filter_ablation(1)

    with_filter, without = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nfilter=2: {with_filter}\nfilter=1: {without}")
    # §4.3.1: the two-consecutive filter suppresses spurious relinquishes
    assert with_filter["relinquishes"] < without["relinquishes"] / 3
    assert with_filter["utilization"] > without["utilization"]


def test_cardinality_ablation(benchmark):
    def both():
        return run_cardinality_ablation(True), run_cardinality_ablation(False)

    with_est, without = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\ncardinality on: {with_est}\ncardinality off: {without}")
    # §4.3.1: without the estimator, the incast repeatedly blows past D_limit
    assert with_est["frac_above_limit"] <= without["frac_above_limit"]
    assert with_est["relinquishes"] < without["relinquishes"]
    assert with_est["max_nflow"] > 10


def test_collision_avoidance_ablation(benchmark):
    def both():
        return (
            run_collision_avoidance_ablation(True),
            run_collision_avoidance_ablation(False),
        )

    with_ca, without = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nCA on:  {with_ca}\nCA off: {without}")
    # §4.2.1: collision avoidance cuts the probe load on the network
    assert with_ca["total_probes"] < without["total_probes"]


def test_ecn_priority_extension(benchmark):
    def both():
        return run_ecn_priority(False), run_ecn_priority(True)

    uniform, prio = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nuniform marking: {uniform}\nper-priority marking: {prio}")
    # Appendix B: priority-dependent marking turns DCTCP's fair split into
    # near-strict priority, with no loss of utilisation
    assert abs(uniform["hi_share"] - uniform["lo_share"]) < 0.2
    assert prio["hi_share"] > 0.8
    assert prio["lo_share"] < 0.2
    assert prio["utilization"] > 0.9
