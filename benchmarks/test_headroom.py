"""Fig 11's resource story isolated: PFC headroom vs priority count (§2.2)."""

from repro.experiments.common import Mode
from repro.experiments.headroom_pressure import run_headroom_sweep
from repro.experiments.report import format_table


def test_headroom_starves_shared_pool(benchmark):
    rows = benchmark.pedantic(
        run_headroom_sweep,
        kwargs=dict(
            n_priorities_list=(2, 4, 6, 8),
            n_senders=32,
            buffer_mb_per_tbps=2.0,
            headroom_bytes=12_000,
            duration_ns=2_000_000,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_table(
        ["mode", "#prios", "shared pool (KB)", "PFC pauses", "drops", "small mean (us)", "small p99 (us)"],
        [
            (r["mode"], r["n_priorities"], r["shared_pool_bytes"] // 1024,
             int(r["pfc_pauses"]), int(r["drops"]),
             round(r["small_mean_us"], 1), round(r["small_p99_us"], 1))
            for r in rows
        ],
        title="Headroom pressure (incast waves, Tomahawk4-like buffer ratio):",
    ))
    pp = rows[0]
    phys = {r["n_priorities"]: r for r in rows[1:]}

    # §2.2: each extra lossless priority reserves more headroom — the shared
    # pool shrinks monotonically until only the floor remains
    pools = [phys[n]["shared_pool_bytes"] for n in (2, 4, 6, 8)]
    assert all(a >= b for a, b in zip(pools, pools[1:]))
    assert pools[-1] < pools[0]

    # PrioPlus needs 2 physical queues regardless of priority count, keeps
    # most of the chip buffer as shared pool, and fires far fewer pauses
    assert pp["shared_pool_bytes"] > 2 * pools[-1]
    assert pp["pfc_pauses"] * 5 <= min(phys[n]["pfc_pauses"] for n in (2, 4, 6, 8))
    assert pp["drops"] == 0
    # every flow completes under every configuration (losslessness holds)
    for r in rows:
        assert r["done"] == r["total"]
