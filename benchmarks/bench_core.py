#!/usr/bin/env python
"""Standalone entry for the simulation-core microbenchmarks.

Equivalent to ``python -m repro bench --core``; kept here so the benchmark
suite is discoverable next to the pytest-benchmark experiment benches.

    PYTHONPATH=src python benchmarks/bench_core.py                 # full suite
    PYTHONPATH=src python benchmarks/bench_core.py --quick
    PYTHONPATH=src python benchmarks/bench_core.py --quick \\
        --check benchmarks/baseline_core.json                      # CI gate
"""

import sys

from repro.__main__ import _bench_main

if __name__ == "__main__":
    sys.exit(_bench_main(["--core"] + sys.argv[1:]))
